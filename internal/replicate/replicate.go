// Package replicate turns reapd's write-ahead journal into a
// hot-standby replication channel: a primary ships every journaled
// event to followers over a long-lived HTTP stream, followers apply
// them under the same locks the service uses, and a persisted
// monotonic epoch fences a stale ex-primary after a failover.
//
// The design leans entirely on invariants the journal already
// guarantees (see DESIGN.md "Replication contract"):
//
//   - The journal is an ordered, CRC-framed log of every acknowledged
//     state mutation, so "replicate the journal" is exactly "replicate
//     the service state". Stream frames reuse the journal's framing
//     (journal.EncodeFrame/ReadFrame): a follower validates shipped
//     bytes with the same parser its boot replay trusts, and a torn
//     stream is detected the same way as a torn segment.
//   - Ship-before-ack: the Hub writes an appended event to every live
//     follower's connection (through the kernel send buffer) while
//     still inside the append critical section, before the client's
//     200 is written. kill -9 of the primary cannot revoke bytes the
//     kernel has accepted for delivery, so every acknowledged event is
//     either on a follower's wire or the follower was already detached
//     (and will catch up from the journal on reconnect).
//   - Catch-up reads come from the journal itself via a Cursor —
//     retained rotated segments plus snapshot-first bootstrap when a
//     follower's position predates retention — so the Hub holds no
//     replication buffer of its own.
//   - Fencing: the epoch is a monotonic term persisted in the journal
//     directory. Promotion bumps it; every data- and replication-plane
//     exchange carries it; the side with the lower epoch loses. A
//     rejoining ex-primary is told stale_epoch and demotes itself.
package replicate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Frame kinds carried by a replication stream. Every frame is a
// journal-framed record whose payload starts [format, kind].
const (
	// KindHello opens a stream: the primary's epoch, its current
	// sequence number, and whether a snapshot bootstrap follows.
	KindHello = byte(1)
	// KindSnapshot installs a full state snapshot at Seq; the follower
	// must discard local history and re-root (journal Store.Reset).
	KindSnapshot = byte(2)
	// KindEvent carries one journal event payload with its sequence
	// number; the follower applies and appends it locally.
	KindEvent = byte(3)
	// KindHeartbeat carries the primary's current sequence number so an
	// idle follower can measure lag and freshness.
	KindHeartbeat = byte(4)
)

// frameFormat versions the frame payload encoding.
const frameFormat = 1

// ErrBadFrame reports a replication frame that decoded under the
// journal CRC but does not parse as a known message — protocol
// corruption or version skew, never silently skipped.
var ErrBadFrame = errors.New("replicate: malformed frame")

// ErrStream reports a replication stream that cannot be established or
// has failed; the remedy is reconnect-and-resync, not apply.
var ErrStream = errors.New("replicate: stream failed")

// ErrOutOfSync reports a follower whose local journal position no
// longer matches the primary's stream — divergence. The follower must
// drop the stream and re-bootstrap from a snapshot.
var ErrOutOfSync = errors.New("replicate: follower out of sync")

// Message is one decoded replication frame.
type Message struct {
	Kind      byte
	Epoch     uint64 // hello: primary's current epoch
	Seq       uint64 // hello/heartbeat: primary seq; snapshot/event: frame's seq
	Bootstrap bool   // hello: a snapshot frame follows
	Payload   []byte // snapshot state or journal event payload
}

// Encode renders m as a stream-frame payload (the caller wraps it with
// journal.EncodeFrame for the CRC framing).
func (m Message) Encode() []byte {
	buf := make([]byte, 0, 2+2*binary.MaxVarintLen64+1+len(m.Payload))
	buf = append(buf, frameFormat, m.Kind)
	buf = binary.AppendUvarint(buf, m.Epoch)
	buf = binary.AppendUvarint(buf, m.Seq)
	var flags byte
	if m.Bootstrap {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = append(buf, m.Payload...)
	return buf
}

// Decode parses a stream-frame payload. Unknown formats, unknown
// kinds, truncated varints and trailing bytes on payload-less kinds
// all fail with ErrBadFrame.
func Decode(p []byte) (Message, error) {
	if len(p) < 2 {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(p))
	}
	if p[0] != frameFormat {
		return Message{}, fmt.Errorf("%w: unknown format %d", ErrBadFrame, p[0])
	}
	m := Message{Kind: p[1]}
	rest := p[2:]
	epoch, n := binary.Uvarint(rest)
	if n <= 0 {
		return Message{}, fmt.Errorf("%w: truncated epoch", ErrBadFrame)
	}
	rest = rest[n:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return Message{}, fmt.Errorf("%w: truncated seq", ErrBadFrame)
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return Message{}, fmt.Errorf("%w: missing flags", ErrBadFrame)
	}
	m.Epoch, m.Seq, m.Bootstrap = epoch, seq, rest[0]&1 != 0
	rest = rest[1:]
	switch m.Kind {
	case KindHello, KindHeartbeat:
		if len(rest) != 0 {
			return Message{}, fmt.Errorf("%w: %d trailing bytes on kind %d", ErrBadFrame, len(rest), m.Kind)
		}
	case KindSnapshot, KindEvent:
		m.Payload = rest
	default:
		return Message{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, m.Kind)
	}
	return m, nil
}

// epochFile is the fencing token's home, beside the journal segments
// it fences: "epoch" holding the term as fixed-width hex.
const epochFile = "epoch"

// LoadEpoch reads the persisted epoch from dir; a missing file is
// epoch 1 — the first term, held by a node that has never seen a
// promotion. (Zero is reserved to mean "no epoch": clients that carry
// no fencing token, wire fields elided by omitempty.)
func LoadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 1, nil
		}
		return 0, fmt.Errorf("replicate: load epoch: %w", err)
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("replicate: load epoch: %w", err)
	}
	return e, nil
}

// SaveEpoch durably persists epoch in dir (temp write, fsync, atomic
// rename, directory sync). Fencing is only as strong as this write:
// a promotion must not be acknowledged before its epoch is on disk.
func SaveEpoch(dir string, epoch uint64) error {
	path := filepath.Join(dir, epochFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replicate: save epoch: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%016x\n", epoch); err != nil {
		_ = f.Close()
		return fmt.Errorf("replicate: save epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("replicate: save epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replicate: save epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("replicate: save epoch: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
