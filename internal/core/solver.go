package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/lp"
)

// checkSolveArgs runs the shared argument validation of every solve entry
// point: a cancelled context, an invalid configuration, or a negative or
// NaN budget each map onto the package's sentinel errors.
func checkSolveArgs(ctx context.Context, c Config, budget float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if math.IsNaN(budget) || budget < 0 {
		return fmt.Errorf("%w: got %v", ErrBudgetNegative, budget)
	}
	return nil
}

// Solve computes the optimal allocation for the given energy budget (J)
// using the simplex method, mirroring Algorithm 1 of the paper. Budgets
// below the off-state floor are handled outside the LP: the device idles
// for as long as the budget allows and is dead for the remainder.
func Solve(c Config, budget float64) (Allocation, error) {
	return SolveContext(context.Background(), c, budget) //lint:reapvet ctxflow -- context-free compatibility shim; the root context is deliberate
}

// SolveContext is Solve with cancellation: the context is checked before
// the LP is built. The solve itself runs in microseconds, so no further
// checks happen mid-pivot; the context exists so fleet-scale callers can
// drain a batch promptly after cancellation.
func SolveContext(ctx context.Context, c Config, budget float64) (Allocation, error) {
	if err := checkSolveArgs(ctx, c, budget); err != nil {
		return Allocation{}, err
	}
	if alloc, done := preLP(c, budget); done {
		return alloc, nil
	}

	n := len(c.DPs)
	// Variables: t_1..t_N, t_off. The weight vector is computed once up
	// front so math.Pow stays out of the row-building loop.
	obj := make([]float64, n+1)
	c.weightVector(obj[:n])
	timeRow := make([]float64, n+1)
	energyRow := make([]float64, n+1)
	for i := 0; i < n; i++ {
		obj[i] /= c.Period
		timeRow[i] = 1
		energyRow[i] = c.DPs[i].Power
	}
	timeRow[n] = 1
	energyRow[n] = c.POff

	p := &lp.Problem{
		Objective: obj,
		Constraints: []lp.Constraint{
			{Coeffs: timeRow, Op: lp.EQ, RHS: c.Period},
			{Coeffs: energyRow, Op: lp.LE, RHS: budget},
		},
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return Allocation{}, err
	}
	if sol.Status != lp.Optimal {
		return Allocation{}, fmt.Errorf("core: solver terminated early: %w", solveStatusError(sol.Status))
	}
	alloc := Allocation{Active: sol.X[:n:n], Off: sol.X[n]}
	clampAllocation(&alloc, c)
	return alloc, nil
}

// SolveEnumerate computes the same optimum by direct vertex enumeration.
// Because the LP has exactly two structural constraints, every basic
// solution has at most two nonzero times, so the optimum is either a single
// state run for the whole period or a mix of two states with the budget
// binding. This independent solver cross-checks the simplex path and is
// also faster for small N (O(N²) with tiny constants).
func SolveEnumerate(c Config, budget float64) (Allocation, error) {
	return SolveEnumerateContext(context.Background(), c, budget) //lint:reapvet ctxflow -- context-free compatibility shim; the root context is deliberate
}

// SolveEnumerateContext is SolveEnumerate with cancellation, checked once
// at entry (see SolveContext).
func SolveEnumerateContext(ctx context.Context, c Config, budget float64) (Allocation, error) {
	if err := checkSolveArgs(ctx, c, budget); err != nil {
		return Allocation{}, err
	}
	if alloc, done := preLP(c, budget); done {
		return alloc, nil
	}

	n := len(c.DPs)
	// State i in [0,n) is a design point; state n is "off". The weight
	// vector is hoisted out of the O(N²) vertex loops — value() used to
	// recompute math.Pow per candidate pair.
	weights := c.weightVector(make([]float64, n))
	power := func(i int) float64 {
		if i == n {
			return c.POff
		}
		return c.DPs[i].Power
	}
	value := func(i int) float64 {
		if i == n {
			return 0
		}
		return weights[i]
	}

	// One scratch allocation for the whole solve: consider overwrites it
	// in place on improvement instead of allocating a fresh Active slice
	// per improving vertex (which produced O(N²) garbage per solve).
	best := Allocation{Active: make([]float64, n), Off: c.Period}
	bestJ := math.Inf(-1)
	consider := func(i, j int, ti, tj float64) {
		if ti < -1e-9 || tj < -1e-9 || ti+tj > c.Period+1e-6 {
			return
		}
		if ti < 0 {
			ti = 0
		}
		if tj < 0 {
			tj = 0
		}
		J := (value(i)*ti + value(j)*tj) / c.Period
		if J <= bestJ {
			return
		}
		for k := range best.Active {
			best.Active[k] = 0
		}
		best.Off, best.Dead = 0, 0
		if i == n {
			best.Off = ti
		} else {
			best.Active[i] = ti
		}
		if j == n {
			best.Off += tj
		} else {
			best.Active[j] += tj
		}
		bestJ = J
	}

	// Single-state vertices: run state i for the whole period if the
	// budget allows (budget slack absorbs the rest).
	for i := 0; i <= n; i++ {
		if power(i)*c.Period <= budget+1e-9 {
			consider(i, n, c.Period, 0)
		}
	}
	// Two-state vertices with the budget binding:
	// t_i + t_j = TP, P_i t_i + P_j t_j = Eb.
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			pi, pj := power(i), power(j)
			if math.Abs(pi-pj) < 1e-15 {
				continue
			}
			ti := (budget - pj*c.Period) / (pi - pj)
			tj := c.Period - ti
			if ti < -1e-9 || tj < -1e-9 {
				continue
			}
			consider(i, j, ti, tj)
		}
	}
	clampAllocation(&best, c)
	return best, nil
}

// preLP handles the regimes the LP cannot express: a budget below the
// off-state floor (device dies partway through the period) and a budget so
// large the time constraint alone binds. It returns done=false when the LP
// must run.
func preLP(c Config, budget float64) (Allocation, bool) {
	floor := c.MinBudget()
	if budget < floor {
		// Not even the idle circuitry survives the hour: stay off until
		// the budget is gone, then the device is dead.
		off := 0.0
		if c.POff > 0 {
			off = budget / c.POff
		}
		if off > c.Period {
			off = c.Period
		}
		return Allocation{
			Active: make([]float64, len(c.DPs)),
			Off:    off,
			Dead:   c.Period - off,
		}, true
	}
	return Allocation{}, false
}

// clampAllocation removes floating-point dust and re-normalizes the time
// identity t_off + Σtᵢ = TP.
func clampAllocation(a *Allocation, c Config) {
	for i, t := range a.Active {
		if t < 1e-9 {
			a.Active[i] = 0
		}
	}
	if a.Off < 1e-9 {
		a.Off = 0
	}
	// Restore the exact time identity by adjusting off time.
	slack := c.Period - a.ActiveTime() - a.Dead
	if slack < 0 {
		slack = 0
	}
	a.Off = slack
}
