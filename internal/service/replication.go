package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/journal"
	"repro/internal/replicate"
	"repro/internal/resilience"
	"repro/wire"
)

// This file is the service side of hot-standby replication (see
// internal/replicate for the stream machinery and DESIGN.md
// "Replication contract" for the invariants):
//
//   - A journaled primary routes every mutation append through a
//     replicate.Hub, which ships the event to every attached follower
//     before the client is acknowledged (ship-before-ack).
//   - A follower (-role follower -primary <addr>) boots from its own
//     journal, then tails the primary's stream, applying frames under
//     the same shard locks the live handlers use and appending them to
//     its local journal in sequence lockstep. It answers stateless
//     solves normally and refuses mutations with 503 not_primary plus
//     a Leader hint header.
//   - Failover is fenced by a monotonic epoch persisted beside the
//     journal: POST /v1/promote bumps it, and any node that sees
//     evidence of a higher epoch (an X-Reap-Epoch header or a follower
//     connect from a later term) refuses mutations with 409
//     stale_epoch instead of split-braining.
//   - A full disk (journal.ErrDiskFull) flips the node into sticky
//     read-only degraded mode: mutations answer 503 degraded, solves
//     keep serving.

// role classifies the node for /healthz: degraded and fenced trump the
// replication role because they are what a load balancer must route
// on — both refuse every mutation.
func (s *Service) role() string {
	switch {
	case s.degraded.Load():
		return wire.RoleDegraded
	case s.fenced.Load():
		return wire.RoleFenced
	case s.follower.Load():
		return wire.RoleFollower
	default:
		return wire.RolePrimary
	}
}

// noteEpoch records evidence that epoch e is in force somewhere. The
// node remembers the high-water mark (a later promotion must out-bid
// it) and, if it believed itself primary, self-fences: a primary that
// has seen a higher term can no longer safely acknowledge mutations.
func (s *Service) noteEpoch(e uint64) {
	for {
		cur := s.maxSeenEpoch.Load()
		if e <= cur || s.maxSeenEpoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if e > s.epoch.Load() && !s.follower.Load() {
		s.fenced.Store(true)
	}
}

// gateWrite runs the replication-role gates every state-mutating
// endpoint passes after admission — epoch fencing, follower refusal,
// degraded refusal — writing the refusal itself when the request may
// not proceed. Stateless solves never come here.
func (s *Service) gateWrite(w http.ResponseWriter, r *http.Request) bool {
	if h := r.Header.Get("X-Reap-Epoch"); h != "" {
		reqEpoch, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				wire.Errorf(wire.CodeMalformed, "X-Reap-Epoch: %v", err))
			return false
		}
		if local := s.epoch.Load(); reqEpoch != local {
			if reqEpoch > local {
				// The client has seen a later term than us: we are the
				// stale ex-primary. Fence before answering.
				s.noteEpoch(reqEpoch)
			}
			writeError(w, http.StatusConflict, wire.Errorf(wire.CodeStaleEpoch,
				"request at epoch %d, node at epoch %d", reqEpoch, local))
			return false
		}
	}
	if s.fenced.Load() {
		writeError(w, http.StatusConflict, wire.Errorf(wire.CodeStaleEpoch,
			"node fenced at epoch %d: a higher epoch is in force elsewhere", s.epoch.Load()))
		return false
	}
	if s.follower.Load() {
		if s.cfg.PrimaryAddr != "" {
			w.Header().Set("Leader", s.cfg.PrimaryAddr)
		}
		writeError(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeNotPrimary,
			"this node is a follower; send mutations to the primary"))
		return false
	}
	if s.degraded.Load() {
		writeError(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeDegraded,
			"journal disk full: node is read-only (solves still served)"))
		return false
	}
	return true
}

// replicationControl reports the paths that must stay reachable under
// overload and never count as client work: the replication stream
// (long-lived — it would pin a gate slot forever), follower acks, and
// the promote action an operator needs exactly when the fleet is on
// fire.
func replicationControl(path string) bool {
	return path == "/v1/replicate" || path == "/v1/replicate/ack" || path == "/v1/promote"
}

// handleReplicate is GET /v1/replicate?from=<seq>: the primary-side
// journal-shipping stream. Fencing runs before a single frame is sent;
// after the 200 commits, errors can only end the stream (the follower
// reconnects with backoff).
func (s *Service) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		writeError(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeNotPrimary,
			"replication requires a journal (-journal)"))
		return
	}
	if s.follower.Load() {
		if s.cfg.PrimaryAddr != "" {
			w.Header().Set("Leader", s.cfg.PrimaryAddr)
		}
		writeError(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeNotPrimary,
			"this node is a follower; replicate from the primary"))
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(valueOr(q.Get("from"), "0"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.Errorf(wire.CodeMalformed, "from: %v", err))
		return
	}
	reqEpoch, err := strconv.ParseUint(valueOr(q.Get("epoch"), "0"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.Errorf(wire.CodeMalformed, "epoch: %v", err))
		return
	}
	id := q.Get("id")
	if id == "" {
		id = r.RemoteAddr
	}
	local := s.epoch.Load()
	if reqEpoch > local {
		s.noteEpoch(reqEpoch)
		writeError(w, http.StatusConflict, wire.Errorf(wire.CodeStaleEpoch,
			"follower at epoch %d, this node at epoch %d: node is stale", reqEpoch, local))
		return
	}
	if s.fenced.Load() {
		writeError(w, http.StatusConflict, wire.Errorf(wire.CodeStaleEpoch,
			"node fenced at epoch %d", local))
		return
	}
	// A follower from an older epoch carries history from a fenced
	// primary; its journal may hold unacknowledged events ours never
	// saw, so it must re-root from a snapshot rather than catch up.
	bootstrap := q.Get("resync") == "1" || reqEpoch < local
	_ = s.hub.ServeStream(r.Context(), w, id, from, bootstrap)
}

func valueOr(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// handleReplicateAck is POST /v1/replicate/ack: followers report the
// sequence they have durably applied through. Best-effort lag
// accounting — correctness never rides on acks.
func (s *Service) handleReplicateAck(w http.ResponseWriter, r *http.Request) {
	var req wire.ReplicateAckRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if s.hub == nil || s.follower.Load() {
		writeError(w, http.StatusServiceUnavailable,
			wire.Errorf(wire.CodeNotPrimary, "this node is not a replication primary"))
		return
	}
	if local := s.epoch.Load(); req.Epoch > local {
		s.noteEpoch(req.Epoch)
		writeError(w, http.StatusConflict, wire.Errorf(wire.CodeStaleEpoch,
			"ack at epoch %d, node at epoch %d", req.Epoch, local))
		return
	}
	s.hub.RecordAck(req.ID, req.Seq)
	writeJSON(w, http.StatusOK, &wire.ReplicateAckResponse{V: wire.Version})
}

// handlePromote is POST /v1/promote: the admin failover action. On a
// follower it stops the tail stream (waiting for the goroutine — no
// leaks), bumps the epoch past every term this node has ever seen,
// persists it before answering, and starts acknowledging mutations.
// Idempotent on a node that is already the primary; a fenced ex-primary
// may also be promoted, which re-arms it at a winning epoch.
func (s *Service) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req wire.PromoteRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if s.store == nil {
		writeError(w, http.StatusBadRequest,
			wire.Errorf(wire.CodeInvalidConfig, "promotion requires a journal (-journal)"))
		return
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.follower.Load() || s.fenced.Load() {
		s.stopTailLocked()
		e := s.epoch.Load()
		if m := s.maxSeenEpoch.Load(); m > e {
			e = m
		}
		e++
		// Persist before acknowledging: a promotion the admin saw
		// succeed must survive an immediate crash, or the restarted node
		// would rejoin at the old epoch and fence itself.
		if err := replicate.SaveEpoch(s.cfg.JournalDir, e); err != nil {
			writeError(w, http.StatusInternalServerError,
				wire.Errorf(wire.CodeInternal, "persisting epoch: %v", err))
			return
		}
		s.epoch.Store(e)
		s.follower.Store(false)
		s.fenced.Store(false)
	}
	writeJSON(w, http.StatusOK, &wire.PromoteResponse{
		V: wire.Version, Role: wire.RolePrimary,
		Epoch: s.epoch.Load(), Seq: s.store.Seq(),
	})
}

// startTail launches the follower's stream client behind a recover
// boundary. Called from New (before the service serves anything).
func (s *Service) startTail() {
	ctx, cancel := context.WithCancel(context.Background()) //lint:reapvet ctxflow -- the tail outlives every request; its root is the service lifecycle, canceled by stopTailLocked
	done := make(chan struct{})
	s.tailCancel, s.tailDone = cancel, done
	s.tailer = replicate.NewTailer(replicate.TailConfig{
		Primary:     s.cfg.PrimaryAddr,
		ID:          s.cfg.FollowerID,
		From:        s.store.Seq,
		Epoch:       s.epoch.Load,
		OnHello:     s.replHello,
		OnSnapshot:  s.replSnapshot,
		OnEvent:     s.replEvent,
		OnHeartbeat: s.replHeartbeat,
	})
	t := s.tailer
	resilience.Go("replicate-tail", s.backgroundPanic, func() {
		defer close(done)
		t.Run(ctx)
	})
}

// stopTailLocked cancels the tail stream and waits for its goroutine to
// exit. Callers hold promoteMu (which serializes Close and promote).
func (s *Service) stopTailLocked() {
	if s.tailCancel == nil {
		return
	}
	s.tailCancel()
	<-s.tailDone
	s.tailCancel = nil
}

// noteFrame records stream liveness: the primary's position and when we
// last heard from it. Tail-goroutine only; plain stores suffice.
func (s *Service) noteFrame(primarySeq uint64) {
	if primarySeq > s.primarySeq.Load() {
		s.primarySeq.Store(primarySeq)
	}
	s.lastFrame.Store(time.Now().UnixNano())
}

// replHello vets the primary's term at stream start. A primary behind
// our epoch is a zombie — refuse the stream; a primary ahead of us is
// the new truth — persist and adopt its epoch before applying anything
// from it.
func (s *Service) replHello(epoch, seq uint64) error {
	local := s.epoch.Load()
	if epoch < local {
		return fmt.Errorf("%w: primary at epoch %d, behind local %d", replicate.ErrStream, epoch, local)
	}
	if epoch > local {
		if err := replicate.SaveEpoch(s.cfg.JournalDir, epoch); err != nil {
			return err
		}
		s.epoch.Store(epoch)
	}
	s.noteFrame(seq)
	return nil
}

// replSnapshot installs a full-state snapshot frame: discard local
// fleet state and journal history, re-root both at seq. Runs with every
// shard lock held — the same consistent cut compaction takes — so
// neither a mutation nor a concurrent compaction can interleave.
func (s *Service) replSnapshot(seq uint64, payload []byte) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	if err := s.restoreSnapshot(payload); err != nil {
		return err
	}
	if err := s.store.Reset(payload, seq); err != nil {
		if errors.Is(err, journal.ErrDiskFull) {
			s.degraded.Store(true)
		}
		return err
	}
	s.appendsAtCompact.Store(s.store.Stats().Appended)
	s.applied.Add(1)
	s.noteFrame(seq)
	return nil
}

// replEvent applies one replicated journal event: under the locks of
// every shard it touches, the event is appended to the local journal in
// sequence lockstep with the primary (acked⇒journaled holds on the
// follower too) and then applied with replay semantics. A sequence
// mismatch means our history diverged — ErrOutOfSync forces a snapshot
// resync on reconnect.
func (s *Service) replEvent(seq uint64, payload []byte) error {
	ev, err := decodeEvent(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", replicate.ErrOutOfSync, err)
	}
	shs, err := s.shardsTouched(ev)
	if err != nil {
		return fmt.Errorf("%w: %v", replicate.ErrOutOfSync, err)
	}
	for _, sh := range shs {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(shs) - 1; i >= 0; i-- {
			shs[i].mu.Unlock()
		}
	}()
	if want := s.store.Seq() + 1; seq != want {
		return fmt.Errorf("%w: stream at event %d, local journal expects %d",
			replicate.ErrOutOfSync, seq, want)
	}
	if _, err := s.store.Append(payload); err != nil {
		if errors.Is(err, journal.ErrDiskFull) {
			s.degraded.Store(true)
		}
		return err
	}
	// Apply failures are skipped exactly as boot replay skips them: only
	// successful mutations were journaled by the primary, so a re-failure
	// here is the same deterministic no-op it was there.
	_ = s.applyEvent(ev)
	s.applied.Add(1)
	s.noteFrame(seq)
	return nil
}

// replHeartbeat observes the primary's position on an idle stream.
func (s *Service) replHeartbeat(seq uint64) { s.noteFrame(seq) }

// shardsTouched resolves the shards a journal event mutates, ascending
// by shard range — the lock order every other multi-shard path uses.
func (s *Service) shardsTouched(ev *journalEvent) ([]*shard, error) {
	var out []*shard
	if ev.Op == opReport {
		for _, rep := range ev.Reports {
			sh, err := s.shardFor(rep.Device)
			if err != nil {
				return nil, err
			}
			if !shardHeld(out, sh) {
				out = append(out, sh)
			}
		}
	} else {
		sh, err := s.shardFor(ev.Device)
		if err != nil {
			return nil, err
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out, nil
}

// replicationStats builds the /v1/stats replication block; nil when the
// node runs without a journal.
func (s *Service) replicationStats() *wire.ReplicationStats {
	if s.store == nil {
		return nil
	}
	rs := &wire.ReplicationStats{Role: s.role(), Epoch: s.epoch.Load()}
	if s.follower.Load() {
		rs.Primary = s.cfg.PrimaryAddr
		rs.Applied = s.applied.Load()
		if t := s.tailer; t != nil {
			rs.Connected = t.Connected()
			rs.Reconnects = t.Reconnects()
			rs.Resyncs = t.Resyncs()
		}
		if ps, local := s.primarySeq.Load(), s.store.Seq(); ps > local {
			rs.LagEvents = ps - local
		}
		if lf := s.lastFrame.Load(); lf != 0 {
			rs.LagS = time.Since(time.Unix(0, lf)).Seconds()
		}
		return rs
	}
	if s.hub != nil {
		for _, f := range s.hub.Followers() {
			rs.Followers = append(rs.Followers, wire.FollowerLag{
				ID: f.ID, Live: f.Live,
				ShippedSeq: f.ShippedSeq, AckSeq: f.AckSeq, AckAgeS: f.AckAgeS,
			})
		}
	}
	return rs
}
