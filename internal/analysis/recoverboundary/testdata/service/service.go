// Fixture loaded as repro/internal/service: every goroutine must start
// behind the resilience recover boundary.
package service

import "repro/internal/resilience"

func countPanic(string, any) {}

// Maintain launches its loop the sanctioned way: clean.
func Maintain(work func()) {
	resilience.Go("maintenance", countPanic, work)
}

// Leak spawns a goroutine no recover boundary protects.
func Leak(work func()) {
	go work() // want `bare go statement in internal/service`
}

// Nested go statements are just as fatal to the daemon.
func LeakNested(work func()) {
	resilience.Go("outer", countPanic, func() {
		go work() // want `bare go statement in internal/service`
	})
}
