package eval

import (
	"repro/internal/har"
	"repro/internal/synth"
)

// Figure3Point is one design point in the energy-accuracy scatter.
type Figure3Point struct {
	Name        string
	EnergyMJ    float64
	AccuracyPct float64
	OnFront     bool
	Published   bool // one of the paper's DP1..DP5
}

// Figure3Result is the full 24-point design-space scatter with its Pareto
// front, the content of Figure 3 in the paper.
type Figure3Result struct {
	Points []Figure3Point
}

// Figure3 characterizes the full 24-point design space on a fresh corpus.
func Figure3() (*Figure3Result, error) {
	ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
	if err != nil {
		return nil, err
	}
	return Figure3On(ds)
}

// Figure3On is Figure3 against a caller-provided corpus.
func Figure3On(ds *synth.Dataset) (*Figure3Result, error) {
	points, err := har.Characterize(ds, har.AllSpecs())
	if err != nil {
		return nil, err
	}
	front := har.ParetoFront(points)
	onFront := make(map[string]bool, len(front))
	for _, f := range front {
		onFront[f.Spec.Name] = true
	}
	published := map[string]bool{"DP1": true, "DP2": true, "DP3": true, "DP4": true, "DP5": true}
	res := &Figure3Result{}
	for _, p := range points {
		res.Points = append(res.Points, Figure3Point{
			Name:        p.Spec.Name,
			EnergyMJ:    1e3 * p.EnergyPerActivity(),
			AccuracyPct: 100 * p.Accuracy,
			OnFront:     onFront[p.Spec.Name],
			Published:   published[p.Spec.Name],
		})
	}
	return res, nil
}

// Front returns the points on the Pareto front, in input order.
func (r *Figure3Result) Front() []Figure3Point {
	var out []Figure3Point
	for _, p := range r.Points {
		if p.OnFront {
			out = append(out, p)
		}
	}
	return out
}

// Render prints the scatter as (energy, accuracy) rows with front markers.
func (r *Figure3Result) Render() string {
	t := &table{header: []string{"name", "energy/act(mJ)", "accuracy(%)", "pareto", "published"}}
	for _, p := range r.Points {
		mark, pub := "", ""
		if p.OnFront {
			mark = "*"
		}
		if p.Published {
			pub = "DP"
		}
		t.add(p.Name, f2(p.EnergyMJ), f1(p.AccuracyPct), mark, pub)
	}
	return "Figure 3: energy-accuracy trade-off of the 24 design points (* = Pareto front)\n" + t.String()
}
