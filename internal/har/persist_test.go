package har

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/synth"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 4, TotalWindows: 560, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	specs := []DesignPointSpec{PaperFive()[0], PaperFive()[4]}
	// Include a quantized spec to exercise QNet restoration.
	q := PaperFive()[1]
	q.Name = "DP2-int8"
	q.Quantized = true
	specs = append(specs, q)

	var models []*Model
	for _, s := range specs {
		m, err := TrainModel(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	data, err := SaveModels(models)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(models) {
		t.Fatalf("%d models restored", len(back))
	}
	// Every restored model must classify identically to the original.
	rng := rand.New(rand.NewSource(9))
	for k := range models {
		if back[k].Spec.Name != models[k].Spec.Name {
			t.Fatalf("name %q != %q", back[k].Spec.Name, models[k].Spec.Name)
		}
		if back[k].TestAcc != models[k].TestAcc {
			t.Fatalf("%s: test accuracy lost", back[k].Spec.Name)
		}
		if models[k].Spec.Quantized && back[k].QNet == nil {
			t.Fatalf("%s: quantized network not restored", back[k].Spec.Name)
		}
		for trial := 0; trial < 30; trial++ {
			u := ds.Users[rng.Intn(len(ds.Users))]
			w := synth.Generate(u, synth.Activities()[rng.Intn(synth.NumActivities)], rng)
			a, err := models[k].Classify(w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back[k].Classify(w)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s trial %d: original %v, restored %v", back[k].Spec.Name, trial, a, b)
			}
		}
	}
}

func TestLoadModelsRejectsCorrupt(t *testing.T) {
	if _, err := LoadModels([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A structurally valid bundle with a width mismatch.
	bundle := []Bundle{{
		Name:            "bad",
		Axes:            uint8(AxesAll),
		SensingFraction: 1,
		AccelFeat:       int(AccelStats),
		StretchFeat:     int(StretchFFT16),
		NormMean:        make([]float64, 3), // wrong width
		NormStd:         make([]float64, 3),
	}}
	data, err := json.Marshal(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(data); err == nil {
		t.Fatal("missing network accepted")
	}
	// Invalid feature config.
	bundle[0].AccelFeat = int(AccelNone)
	data, _ = json.Marshal(bundle)
	if _, err := LoadModels(data); err == nil {
		t.Fatal("invalid feature config accepted")
	}
}

func TestSaveModelsRejectsNil(t *testing.T) {
	if _, err := SaveModels([]*Model{nil}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := SaveModels([]*Model{{}}); err == nil {
		t.Fatal("model without network accepted")
	}
}
