// fleet demonstrates the batch/fleet layer: one process coordinating a
// thousand harvesting devices, each with its own controller session,
// stepped concurrently every activity period — the shape of a cloud
// service planning schedules for a deployed population. A second part
// shows the stateless SolveBatch path on a budget grid.
package main

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	const devices = 1000

	fleet, err := reap.NewFleet(devices,
		reap.WithBattery(20, 100),
		reap.WithSolver(reap.SolverEnumerate),
	)
	if err != nil {
		panic(err)
	}

	// A stylized day: every device sees the same diurnal harvest shape
	// scaled by its site quality (panel orientation, shading, latitude).
	fmt.Printf("fleet of %d devices, 24 simulated hours\n\n", devices)
	var totalAcc float64
	start := time.Now()
	for hour := 0; hour < 24; hour++ {
		sun := math.Max(0, math.Sin(math.Pi*float64(hour-6)/12)) // daylight 06:00-18:00
		budgets := make([]float64, devices)
		for d := range budgets {
			site := 0.5 + float64(d%100)/100.0 // site quality 0.5x .. 1.5x
			budgets[d] = 8.0 * sun * site
		}
		allocs, err := fleet.StepAll(ctx, budgets)
		if err != nil {
			panic(err)
		}
		consumed := make([]float64, devices)
		var hourAcc float64
		for d, alloc := range allocs {
			dev, err := fleet.Device(d)
			if err != nil {
				panic(err)
			}
			cfg := dev.Config()
			consumed[d] = alloc.Energy(cfg) // devices execute the plan faithfully here
			hourAcc += alloc.ExpectedAccuracy(cfg)
		}
		if err := fleet.ReportAll(consumed); err != nil {
			panic(err)
		}
		totalAcc += hourAcc
		if hour%6 == 0 {
			fmt.Printf("  %02d:00  mean budget %5.2f J  fleet mean E{a} %5.1f%%\n",
				hour, mean(budgets), 100*hourAcc/devices)
		}
	}
	fmt.Printf("\n24 fleet-hours (%d steps) in %v; day-mean E{a} %.1f%%\n",
		24*devices, time.Since(start).Round(time.Millisecond), 100*totalAcc/(24*devices))
	if stats, ok := fleet.CacheStats(); ok {
		fmt.Printf("solve cache: %.1f%% served without a fresh solve (%d hits, %d coalesced, %d LP solves)\n",
			100*stats.HitRate(), stats.Hits, stats.Coalesced, stats.Misses)
	}

	// Stateless batch: a what-if sweep over budgets, cross-checking the
	// default plan backend against the paper's simplex per request.
	reqs := make([]reap.Request, 0, 40)
	for i := 0; i < 20; i++ {
		budget := 0.5 + 0.5*float64(i)
		reqs = append(reqs,
			reap.Request{Budget: budget}, // default backend: the compiled plan
			reap.Request{Budget: budget, Solver: reap.SolverSimplex},
		)
	}
	results := reap.SolveBatch(ctx, reqs)
	agree := 0
	for i := 0; i < len(results); i += 2 {
		if results[i].Err != nil || results[i+1].Err != nil {
			panic(fmt.Sprintf("batch solve failed: %v %v", results[i].Err, results[i+1].Err))
		}
		cfg, _ := reap.NewConfig()
		a, b := results[i].Allocation.Objective(cfg), results[i+1].Allocation.Objective(cfg)
		if math.Abs(a-b) < 1e-9 {
			agree++
		}
	}
	fmt.Printf("\nSolveBatch: %d budget points, plan and simplex agree on %d/%d\n",
		len(reqs)/2, agree, len(reqs)/2)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
