// Command characterize regenerates Table 2 and Figure 3 of the paper:
// it builds the synthetic user-study corpus, trains all 24 design points,
// prices them with the component energy model, and prints the full
// energy-accuracy scatter plus the Pareto-optimal set.
//
// Usage:
//
//	characterize [-users 14] [-windows 3553] [-seed 2019] [-all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/har"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	users := flag.Int("users", 14, "number of synthetic subjects")
	windows := flag.Int("windows", 3553, "total labeled activity windows")
	seed := flag.Int64("seed", 2019, "corpus seed")
	all := flag.Bool("all", true, "characterize all 24 design points (false: just the published five)")
	flag.Parse()

	ds, err := synth.NewDataset(synth.CorpusConfig{
		NumUsers: *users, TotalWindows: *windows, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus: %d windows from %d users (train/val/test %d/%d/%d)",
		len(ds.Windows), len(ds.Users), len(ds.Train), len(ds.Val), len(ds.Test))

	specs := har.PaperFive()
	if *all {
		specs = har.AllSpecs()
	}
	points, err := har.Characterize(ds, specs)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "name\taxes\tsense%\taccel\tstretch\tnn\tacc%\tE/act(mJ)\tpower(mW)\tmcu(ms)")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%v\t%v\t%v\t%.1f\t%.2f\t%.2f\t%.2f\n",
			p.Spec.Name, p.Spec.Features.Axes, 100*p.Spec.Features.SensingFraction,
			p.Spec.Features.AccelFeat, p.Spec.Features.StretchFeat, p.Spec.NNSizes(),
			100*p.Accuracy, 1e3*p.EnergyPerActivity(), 1e3*p.Power(), 1e3*p.Breakdown.TimeTotal)
	}
	w.Flush()

	front := har.ParetoFront(points)
	fmt.Println("\nPareto front (decreasing power):")
	for _, p := range front {
		fmt.Printf("  %-14s acc %.1f%%  %.2f mW\n", p.Spec.Name, 100*p.Accuracy, 1e3*p.Power())
	}
}
