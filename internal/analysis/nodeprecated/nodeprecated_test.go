package nodeprecated_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeprecated"
)

func TestCrossPackageUses(t *testing.T) {
	analysistest.Run(t, nodeprecated.Analyzer, "testdata/cross", "repro/cmd/fixture")
}

func TestSelfPackageUses(t *testing.T) {
	analysistest.Run(t, nodeprecated.Analyzer, "testdata/self", "repro/internal/fixture")
}

// TestTableMatchesSource pins the analyzer's hardcoded cross-package
// table to the source of truth: the Deprecated: doc markers in the root
// package. Deprecating a symbol without teaching the analyzer — or
// keeping a stale table entry after a wrapper is deleted — fails here.
func TestTableMatchesSource(t *testing.T) {
	fromSource := map[string]bool{}
	files, err := filepath.Glob("../../../*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		if f.Name.Name != "reap" {
			continue
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Recv == nil && hasDeprecated(decl.Doc) {
					fromSource[decl.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if hasDeprecated(decl.Doc) || hasDeprecated(spec.Doc) {
							fromSource[spec.Name.Name] = true
						}
					case *ast.ValueSpec:
						if hasDeprecated(decl.Doc) || hasDeprecated(spec.Doc) {
							for _, name := range spec.Names {
								fromSource[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	if len(fromSource) == 0 {
		t.Fatal("found no Deprecated: markers in the root package — wrong directory?")
	}

	table := nodeprecated.Deprecated["repro"]
	for name := range fromSource {
		if _, ok := table[name]; !ok {
			t.Errorf("repro.%s carries a Deprecated: marker but is missing from the nodeprecated table", name)
		}
	}
	for name := range table {
		if !fromSource[name] {
			t.Errorf("nodeprecated table lists repro.%s, which carries no Deprecated: marker in source", name)
		}
	}
}

func hasDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "Deprecated:") {
			return true
		}
	}
	return false
}
