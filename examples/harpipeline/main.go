// harpipeline runs the full on-device stack the paper prototypes: it
// builds a synthetic user-study corpus, trains the five Pareto design
// points (sensing → features → NN classifier), prices them with the
// component energy model, and then classifies a live stream of activity
// windows under the design point REAP selects for the current budget.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/har"
	"repro/internal/synth"
)

func main() {
	// A compact corpus keeps the example fast; use DefaultCorpusConfig
	// for the paper-scale 14-user / 3553-window study.
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 8, TotalWindows: 1600, Seed: 2019})
	if err != nil {
		panic(err)
	}
	fmt.Printf("corpus: %d windows, %d users\n", len(ds.Windows), len(ds.Users))

	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncharacterized design points (trained + priced):")
	for _, p := range points {
		fmt.Printf("  %-4s acc %.1f%%  %.2f mJ/activity  %.2f mW\n",
			p.Spec.Name, 100*p.Accuracy, 1e3*p.EnergyPerActivity(), 1e3*p.Power())
	}

	// Assemble the optimizer configuration from the simulated
	// characterization (not the paper's numbers) and plan an hour with
	// the enumeration backend from the solver registry.
	cfg := har.CoreConfig(points, 1)
	solver, err := reap.LookupSolver(reap.SolverEnumerate)
	if err != nil {
		panic(err)
	}
	budget := 5.0
	alloc, err := solver.Solve(context.Background(), cfg, budget)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nhour plan at %.1f J: %v\n", budget, alloc)

	// Execute a slice of the hour: classify live windows under each
	// scheduled design point.
	rng := rand.New(rand.NewSource(7))
	fmt.Println("\nlive classification under the scheduled design points:")
	for i, tSec := range alloc.Active {
		if tSec <= 0 {
			continue
		}
		model := points[i].Model
		correct, total := 0, 40
		for k := 0; k < total; k++ {
			u := ds.Users[rng.Intn(len(ds.Users))]
			truth := synth.Activities()[rng.Intn(synth.NumActivities)]
			w := synth.Generate(u, truth, rng)
			pred, err := model.Classify(w)
			if err != nil {
				panic(err)
			}
			if pred == truth {
				correct++
			}
		}
		fmt.Printf("  %-4s scheduled %4.0f s: %d/%d live windows correct (%.0f%%)\n",
			points[i].Spec.Name, tSec, correct, total, 100*float64(correct)/float64(total))
	}
}
