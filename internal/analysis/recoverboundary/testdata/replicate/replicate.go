// Fixture loaded as repro/internal/replicate: replication machinery
// lives inside the daemon for the life of the process, so its
// goroutines need the same recover boundary as the service's.
package replicate

import "repro/internal/resilience"

func countPanic(string, any) {}

// Tail launches the follower's stream loop the sanctioned way: clean.
func Tail(run func()) {
	resilience.Go("replicate-tail", countPanic, run)
}

// Ship spawns a fan-out goroutine no recover boundary protects: a
// panic here kills the primary mid-fleet.
func Ship(write func()) {
	go write() // want `bare go statement in internal/replicate`
}
