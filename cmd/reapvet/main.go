// Command reapvet runs the repo's project-specific analyzer suite over
// the given packages — the mechanical enforcement of the invariants
// PRs 1–5 established by convention:
//
//	errtaxonomy  errors crossing the public boundary of repro,
//	             internal/core and internal/lp wrap a sentinel via %w
//	ctxflow      library code never mints root contexts; context
//	             parameters are passed through, not dropped
//	hotalloc     //reap:hotpath functions contain no allocating
//	             constructs
//	floatcmp     no raw == / != on floats outside internal/fpx
//	nodeprecated no new callers of Deprecated: symbols — the root
//	             package's compatibility wrappers stay caller-free
//	recoverboundary
//	             no bare go statements in internal/service — daemon
//	             goroutines start via resilience.Go recover boundaries
//
// Usage:
//
//	go run ./cmd/reapvet ./...
//	go run ./cmd/reapvet -only floatcmp,ctxflow ./sim/...
//
// Diagnostics print as file:line:col: analyzer: message, one per line,
// and any finding makes the exit status 1 — the CI lint job runs the
// suite exactly this way. Intentional exceptions are suppressed in
// source with `//lint:reapvet <analyzers> -- reason`; a suppression
// without a reason is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/errtaxonomy"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/nodeprecated"
	"repro/internal/analysis/recoverboundary"
)

var suite = []*analysis.Analyzer{
	errtaxonomy.Analyzer,
	ctxflow.Analyzer,
	hotalloc.Analyzer,
	floatcmp.Analyzer,
	nodeprecated.Analyzer,
	recoverboundary.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		usage()
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reapvet:", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reapvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reapvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reapvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: reapvet [-only a,b] packages...\n\nAnalyzers:\n")
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
