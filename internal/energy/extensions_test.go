package energy

import "testing"

func TestQuantizedNNPricing(t *testing.T) {
	base := Profile{AccelAxes: 3, SensingFraction: 1, StretchFFT: true, NNMACs: 444, TxBytes: 2}
	b, err := Activity(base)
	if err != nil {
		t.Fatal(err)
	}
	q := base
	q.QuantizedNN = true
	qb, err := Activity(q)
	if err != nil {
		t.Fatal(err)
	}
	if qb.TimeNN >= b.TimeNN {
		t.Fatalf("int8 NN time %v not below float %v", qb.TimeNN, b.TimeNN)
	}
	if qb.Total() >= b.Total() {
		t.Fatalf("int8 total %v not below float %v", qb.Total(), b.Total())
	}
	// Only the NN stage changes.
	if qb.TimeAccelFeatures != b.TimeAccelFeatures || qb.SensorAccel != b.SensorAccel {
		t.Fatal("quantization changed non-NN components")
	}
	// The fixed inference overhead survives quantization.
	if qb.TimeNN <= tNNFixed {
		t.Fatalf("int8 NN time %v at or below the fixed overhead", qb.TimeNN)
	}
}

func TestGoertzelBinsPricing(t *testing.T) {
	fft := Profile{StretchFFT: true, NNMACs: 192, TxBytes: 2}
	fb, err := Activity(fft)
	if err != nil {
		t.Fatal(err)
	}
	gz := Profile{StretchGoertzelBins: 6, NNMACs: 192, TxBytes: 2}
	gb, err := Activity(gz)
	if err != nil {
		t.Fatal(err)
	}
	if gb.TimeStretchFeatures >= fb.TimeStretchFeatures {
		t.Fatalf("6-bin Goertzel %v not below full FFT %v",
			gb.TimeStretchFeatures, fb.TimeStretchFeatures)
	}
	// But computing all 9 bins with Goertzel must cost MORE than the FFT
	// (that is the whole point of the FFT).
	gz9 := Profile{StretchGoertzelBins: 9, NNMACs: 192, TxBytes: 2}
	g9, err := Activity(gz9)
	if err != nil {
		t.Fatal(err)
	}
	if g9.TimeStretchFeatures <= fb.TimeStretchFeatures {
		t.Fatalf("9-bin Goertzel %v should exceed the radix-2 FFT %v",
			g9.TimeStretchFeatures, fb.TimeStretchFeatures)
	}
}

func TestGoertzelProfileValidation(t *testing.T) {
	bad := []Profile{
		{StretchGoertzelBins: -1},
		{StretchGoertzelBins: 10},
		{StretchGoertzelBins: 3, StretchFFT: true},
		{StretchGoertzelBins: 3, StretchStats: true},
	}
	for i, p := range bad {
		if _, err := Activity(p); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}
