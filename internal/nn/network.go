// Package nn implements the feed-forward neural network classifier used by
// the HAR design points. The paper's prototype runs small parameterized
// multi-layer perceptrons (structures 4×12×7, 4×8×7 and 4×7, i.e. up to
// one hidden layer of 12 or 8 units over 7 activity classes); this package
// generalizes to arbitrary layer stacks while keeping a MAC-count cost
// model so the energy package can price inference per design point.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects the nonlinearity of a dense layer.
type Activation int

const (
	// Linear applies no nonlinearity.
	Linear Activation = iota
	// ReLU applies max(0, x).
	ReLU
	// Sigmoid applies the logistic function.
	Sigmoid
	// Tanh applies the hyperbolic tangent.
	Tanh
	// Softmax normalizes the layer outputs into a distribution; only
	// meaningful on the final layer, paired with cross-entropy loss.
	Softmax
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Softmax:
		return "softmax"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Layer is one dense (fully connected) layer: y = act(Wx + b).
type Layer struct {
	In, Out int
	Act     Activation
	// W is row-major: W[o*In+i] weights input i into output o.
	W []float64
	B []float64
}

// Network is a stack of dense layers.
type Network struct {
	Layers []*Layer
}

// ErrShape indicates inconsistent layer dimensions.
var ErrShape = errors.New("nn: inconsistent layer shape")

// New builds a network from a layer-size spec: sizes[0] is the input
// width, sizes[len-1] the output width. Hidden layers use hiddenAct, the
// final layer uses outAct. Weights use Xavier/Glorot uniform initialization
// from rng, so construction is deterministic given the seed.
func New(sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output sizes, got %v", ErrShape, sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("%w: non-positive layer size in %v", ErrShape, sizes)
		}
	}
	net := &Network{}
	for l := 0; l+1 < len(sizes); l++ {
		act := hiddenAct
		if l+2 == len(sizes) {
			act = outAct
		}
		layer := &Layer{
			In:  sizes[l],
			Out: sizes[l+1],
			Act: act,
			W:   make([]float64, sizes[l]*sizes[l+1]),
			B:   make([]float64, sizes[l+1]),
		}
		// Xavier/Glorot uniform: U(-lim, lim), lim = sqrt(6/(in+out)).
		lim := math.Sqrt(6 / float64(layer.In+layer.Out))
		for i := range layer.W {
			layer.W[i] = (rng.Float64()*2 - 1) * lim
		}
		net.Layers = append(net.Layers, layer)
	}
	return net, nil
}

// InputSize returns the expected feature-vector width.
func (n *Network) InputSize() int { return n.Layers[0].In }

// OutputSize returns the number of classes.
func (n *Network) OutputSize() int { return n.Layers[len(n.Layers)-1].Out }

// Sizes returns the layer-size spec the network was built from.
func (n *Network) Sizes() []int {
	sizes := []int{n.InputSize()}
	for _, l := range n.Layers {
		sizes = append(sizes, l.Out)
	}
	return sizes
}

// Forward runs inference and returns the output activations. The input is
// not modified.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.InputSize() {
		return nil, fmt.Errorf("%w: input width %d, network expects %d", ErrShape, len(x), n.InputSize())
	}
	cur := x
	for _, l := range n.Layers {
		cur = l.forward(cur, nil)
	}
	return cur, nil
}

// Predict returns the argmax class of Forward.
func (n *Network) Predict(x []float64) (int, error) {
	out, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, out[0]
	for i, v := range out[1:] {
		if v > bestV {
			bestV = v
			best = i + 1
		}
	}
	return best, nil
}

// forward computes the layer output; if pre is non-nil it also receives the
// pre-activation values (needed by backprop).
func (l *Layer) forward(x []float64, pre []float64) []float64 {
	z := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		s := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, v := range x {
			s += row[i] * v
		}
		z[o] = s
	}
	if pre != nil {
		copy(pre, z)
	}
	return applyActivation(l.Act, z)
}

// applyActivation applies act to z in place and returns it.
func applyActivation(act Activation, z []float64) []float64 {
	switch act {
	case Linear:
	case ReLU:
		for i, v := range z {
			if v < 0 {
				z[i] = 0
			}
		}
	case Sigmoid:
		for i, v := range z {
			z[i] = 1 / (1 + math.Exp(-v))
		}
	case Tanh:
		for i, v := range z {
			z[i] = math.Tanh(v)
		}
	case Softmax:
		max := z[0]
		for _, v := range z[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for i, v := range z {
			z[i] = math.Exp(v - max)
			sum += z[i]
		}
		for i := range z {
			z[i] /= sum
		}
	}
	return z
}

// activationDerivFromOutput returns dact/dz given the activation OUTPUT a
// (valid for the element-wise activations; softmax is handled jointly with
// cross-entropy in the trainer).
func activationDerivFromOutput(act Activation, a float64) float64 {
	switch act {
	case Linear:
		return 1
	case ReLU:
		if a > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return a * (1 - a)
	case Tanh:
		return 1 - a*a
	default:
		return 1
	}
}

// MACs returns the number of multiply-accumulate operations one inference
// performs; the energy model converts this to execution time on the
// simulated MCU.
func (n *Network) MACs() int {
	total := 0
	for _, l := range n.Layers {
		total += l.In * l.Out
	}
	return total
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{}
	for _, l := range n.Layers {
		out.Layers = append(out.Layers, &Layer{
			In:  l.In,
			Out: l.Out,
			Act: l.Act,
			W:   append([]float64(nil), l.W...),
			B:   append([]float64(nil), l.B...),
		})
	}
	return out
}
