// Fixture for the hotalloc analyzer: allocating constructs inside
// //reap:hotpath functions.
package hot

import "fmt"

type alloc struct {
	Active []float64
	Off    float64
}

func sink(v any)        { _ = v }
func observe(f func())  { f() }
func consume(s string)  { _ = s }
func use(x interface{}) { _ = x }

//reap:hotpath
func hotMake(n int) []float64 {
	return make([]float64, n) // want `hot path hotMake: make allocates`
}

//reap:hotpath
func hotAppend(dst []float64, v float64) []float64 {
	return append(dst, v) // want `hot path hotAppend: append may grow its backing array`
}

//reap:hotpath
func hotFmt(budget float64) error {
	return fmt.Errorf("bad budget %v", budget) // want `hot path hotFmt: fmt\.Errorf allocates`
}

//reap:hotpath
func hotLiterals() {
	_ = map[string]int{"a": 1} // want `hot path hotLiterals: map literal allocates`
	_ = []float64{1, 2, 3}     // want `hot path hotLiterals: slice literal allocates`
	_ = &alloc{}               // want `hot path hotLiterals: &alloc\{\.\.\.\} escapes to the heap`
}

//reap:hotpath
func hotBox(x float64) {
	sink(x) // want `hot path hotBox: argument boxes a float64 into interface`
}

//reap:hotpath
func hotConvert(x float64) {
	use(interface{}(x)) // want `hot path hotConvert: conversion boxes a float64 into interface`
}

//reap:hotpath
func hotClosure(total *float64, xs []float64) {
	observe(func() { // want `hot path hotClosure: closure captures 2 variable\(s\)`
		for _, x := range xs {
			*total += x
		}
	})
}

//reap:hotpath
func hotGo(done chan struct{}) {
	go func() { close(done) }() // want `hot path hotGo: go statement allocates a goroutine` `hot path hotGo: closure captures 1 variable\(s\)`
}

//reap:hotpath
func hotConcat(a, b string) {
	consume(a + b) // want `hot path hotConcat: string concatenation allocates`
}

//reap:hotpath
func hotBytes(s string) []byte {
	return []byte(s) // want `hot path hotBytes: conversion between string and slice copies`
}

// hotClean is annotated and allocation-free: indexing, arithmetic,
// plain struct resets, calls, and slicing existing capacity are all
// legal.
//
//reap:hotpath
func hotClean(dst *alloc, budget float64) {
	*dst = alloc{}
	if cap(dst.Active) >= 3 {
		dst.Active = dst.Active[:3]
	}
	for i := range dst.Active {
		dst.Active[i] = budget
	}
	dst.Off = budget * 0.5
}

// hotSuppressed shows the cold-branch escape hatch.
//
//reap:hotpath
func hotSuppressed(dst *alloc, n int) {
	if cap(dst.Active) < n {
		dst.Active = make([]float64, n) //lint:reapvet hotalloc -- fixture: one-time buffer growth, amortized to zero
	}
}

// coldMake is NOT annotated: allocations are fine outside hot paths.
func coldMake(n int) []float64 {
	return make([]float64, n)
}

// closureNoCapture: a capture-free closure is a static func value, not
// an allocation.
//
//reap:hotpath
func closureNoCapture() {
	observe(func() {})
}
