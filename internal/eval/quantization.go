package eval

import (
	"repro/internal/energy"
	"repro/internal/har"
	"repro/internal/nn"
	"repro/internal/synth"
)

// QuantizationRow compares a design point's float32-class classifier with
// its int8 post-training quantization: the accuracy cost and the energy
// saving of native 8-bit MACs. This extends the paper's classifier-
// structure knob (Figure 2) with a precision knob.
type QuantizationRow struct {
	Name           string
	FloatAccPct    float64
	Int8AccPct     float64
	FloatEnergyMJ  float64
	Int8EnergyMJ   float64
	EnergySavedPct float64
}

// QuantizationResult is the precision-knob experiment.
type QuantizationResult struct {
	Rows []QuantizationRow
}

// Quantization trains the five published design points, quantizes each
// classifier to int8, and reprices the design point with native-MAC
// inference.
func Quantization() (*QuantizationResult, error) {
	ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
	if err != nil {
		return nil, err
	}
	return QuantizationOn(ds)
}

// QuantizationOn runs the experiment against a caller-provided corpus.
func QuantizationOn(ds *synth.Dataset) (*QuantizationResult, error) {
	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		return nil, err
	}
	res := &QuantizationResult{}
	for _, p := range points {
		q, err := nn.Quantize(p.Model.Net)
		if err != nil {
			return nil, err
		}
		// Re-evaluate on the test split through the same normalizer.
		var samples []nn.Sample
		for _, i := range ds.Test {
			x, err := p.Spec.Features.Extract(ds.Windows[i])
			if err != nil {
				return nil, err
			}
			samples = append(samples, nn.Sample{
				X:     p.Model.Normalizer.Apply(x),
				Label: int(ds.Windows[i].Activity),
			})
		}
		int8Acc := nn.QuantizedAccuracy(q, samples)

		profile := p.Spec.EnergyProfile()
		profile.QuantizedNN = true
		qBreakdown, err := energy.Activity(profile)
		if err != nil {
			return nil, err
		}
		floatE := p.Breakdown.Total()
		int8E := qBreakdown.Total()
		res.Rows = append(res.Rows, QuantizationRow{
			Name:           p.Spec.Name,
			FloatAccPct:    100 * p.Accuracy,
			Int8AccPct:     100 * int8Acc,
			FloatEnergyMJ:  1e3 * floatE,
			Int8EnergyMJ:   1e3 * int8E,
			EnergySavedPct: 100 * (floatE - int8E) / floatE,
		})
	}
	return res, nil
}

// Render prints the precision-knob grid.
func (r *QuantizationResult) Render() string {
	t := &table{header: []string{"DP", "float acc%", "int8 acc%", "float mJ", "int8 mJ", "saved%"}}
	for _, row := range r.Rows {
		t.add(row.Name, f1(row.FloatAccPct), f1(row.Int8AccPct),
			f2(row.FloatEnergyMJ), f2(row.Int8EnergyMJ), f1(row.EnergySavedPct))
	}
	return "Quantization extension: int8 classifiers as an additional design-point knob\n" + t.String()
}
