package dsp

import "testing"

func TestResampleLinearIdentityAndEndpoints(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	same := ResampleLinear(x, 4)
	for i := range x {
		if !approx(same[i], x[i], 1e-12) {
			t.Fatalf("identity resample mismatch: %v", same)
		}
	}
	down := ResampleLinear(x, 2)
	if down[0] != 0 || down[1] != 3 {
		t.Fatalf("downsample endpoints %v, want [0 3]", down)
	}
	up := ResampleLinear([]float64{0, 2}, 3)
	if !approx(up[1], 1, 1e-12) {
		t.Fatalf("upsample midpoint %v, want 1", up[1])
	}
}

func TestResampleLinearEdgeCases(t *testing.T) {
	if out := ResampleLinear(nil, 4); len(out) != 4 {
		t.Fatal("empty input should produce zeroed output")
	}
	if out := ResampleLinear([]float64{7}, 3); out[0] != 7 || out[2] != 7 {
		t.Fatalf("single sample broadcast failed: %v", out)
	}
	if out := ResampleLinear([]float64{1, 2, 3}, 1); out[0] != 1 {
		t.Fatalf("n=1 should return first sample, got %v", out)
	}
	if out := ResampleLinear([]float64{1, 2}, 0); out != nil {
		t.Fatalf("n=0 should return nil, got %v", out)
	}
}

func TestResamplePreservesLinearRamps(t *testing.T) {
	// Linear interpolation reproduces linear signals exactly at any rate.
	x := make([]float64, 160)
	for i := range x {
		x[i] = 0.5 * float64(i)
	}
	out := ResampleLinear(x, 16)
	for i, v := range out {
		want := 0.5 * float64(i) * 159 / 15
		if !approx(v, want, 1e-9) {
			t.Fatalf("sample %d = %v, want %v", i, v, want)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	cp := Decimate(x, 1)
	cp[0] = 99
	if x[0] == 99 {
		t.Fatal("Decimate(k=1) must copy, not alias")
	}
}

func TestTruncate(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Truncate(x, 0.5); len(got) != 5 || got[4] != 5 {
		t.Fatalf("50%% truncation = %v", got)
	}
	if got := Truncate(x, 0.375); len(got) != 4 {
		t.Fatalf("0.375 truncation length = %d, want 4 (rounded)", len(got))
	}
	if got := Truncate(x, 1.5); len(got) != 10 {
		t.Fatalf("over-unity fraction should keep everything: %v", got)
	}
	if got := Truncate(x, 0); got != nil {
		t.Fatalf("zero fraction should return nil, got %v", got)
	}
	cp := Truncate(x, 1)
	cp[0] = 42
	if x[0] == 42 {
		t.Fatal("Truncate must copy, not alias")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{0, 10, 0, 10, 0}
	sm := MovingAverage(x, 3)
	if !approx(sm[2], 20.0/3, 1e-12) {
		t.Fatalf("center sample %v, want 6.67", sm[2])
	}
	if !approx(sm[0], 5, 1e-12) { // clipped window of 2
		t.Fatalf("edge sample %v, want 5", sm[0])
	}
	id := MovingAverage(x, 1)
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("width 1 must be identity")
		}
	}
	even := MovingAverage(x, 2) // rounded up to 3
	if !approx(even[2], sm[2], 1e-12) {
		t.Fatal("even width should round up")
	}
}

func TestMagnitude(t *testing.T) {
	x := []float64{3, 0}
	y := []float64{4, 0}
	z := []float64{0, 2}
	m := Magnitude(x, y, z)
	if !approx(m[0], 5, 1e-12) || !approx(m[1], 2, 1e-12) {
		t.Fatalf("magnitude %v, want [5 2]", m)
	}
	if Magnitude() != nil {
		t.Fatal("no axes should give nil")
	}
	// Ragged axes: shorter axes contribute zero beyond their length.
	m = Magnitude([]float64{3, 3}, []float64{4})
	if !approx(m[1], 3, 1e-12) {
		t.Fatalf("ragged magnitude %v", m)
	}
	// Invariant: magnitude of a single axis is |x|.
	m = Magnitude([]float64{-7})
	if !approx(m[0], 7, 1e-12) {
		t.Fatalf("single axis magnitude %v, want 7", m[0])
	}
}
