package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/errtaxonomy"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
)

// TestSuiteSelfCheck runs every analyzer over the analyzer suite itself,
// its loader, its runner binary and the fpx helpers: the linter holds
// itself to the invariants it enforces. Fixture packages under testdata
// are full of deliberate violations, but go list never surfaces testdata
// directories, so only the real sources are checked.
func TestSuiteSelfCheck(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	pkgs, err := load.Packages(root,
		"repro/internal/analysis/...", "repro/cmd/reapvet", "repro/internal/fpx")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("loaded only %d packages, expected the whole suite", len(pkgs))
	}
	suite := []*analysis.Analyzer{
		errtaxonomy.Analyzer,
		ctxflow.Analyzer,
		hotalloc.Analyzer,
		floatcmp.Analyzer,
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("self-check finding: %s", d)
	}
}
