package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fpx"
)

// Knot is one vertex of the optimal-objective curve J*(Eb).
type Knot struct {
	// Budget is the energy at the knot (J).
	Budget float64
	// J is the optimal objective value there.
	J float64
}

// ObjectiveCurve computes the entire J*(Eb) function in closed form.
//
// The LP's optimal value is a concave piecewise-linear function of the
// budget, and its basis can only change where some design point
// saturates (its time hits TP) — i.e. at the idle floor and at the
// saturation energies Pᵢ·TP. Evaluating the optimum at those candidate
// knots and interpolating linearly in between therefore reproduces the
// whole curve, replacing a budget sweep of simplex solves with one
// O(N²) pass. Figures 5 and 6 are cross-sections of this curve.
func ObjectiveCurve(c Config) ([]Knot, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	candidates := []float64{0, c.MinBudget()}
	for _, d := range c.DPs {
		candidates = append(candidates, d.EnergyPerPeriod(c.Period))
	}
	sort.Float64s(candidates)
	var knots []Knot
	for _, b := range candidates {
		// Skip duplicates (DPs with equal power).
		if len(knots) > 0 && math.Abs(b-knots[len(knots)-1].Budget) < 1e-12 {
			continue
		}
		alloc, err := SolveEnumerate(c, b)
		if err != nil {
			return nil, err
		}
		knots = append(knots, Knot{Budget: b, J: alloc.Objective(c)})
	}
	return knots, nil
}

// EvalCurve interpolates J*(budget) on a curve from ObjectiveCurve.
// Budgets beyond the last knot saturate at the final value.
func EvalCurve(knots []Knot, budget float64) (float64, error) {
	if len(knots) == 0 {
		return 0, fmt.Errorf("%w: empty curve", ErrInvalidConfig)
	}
	if math.IsNaN(budget) || budget < 0 {
		return 0, fmt.Errorf("%w: budget %v", ErrBudgetNegative, budget)
	}
	if budget <= knots[0].Budget {
		return knots[0].J, nil
	}
	for i := 1; i < len(knots); i++ {
		if budget <= knots[i].Budget {
			lo, hi := knots[i-1], knots[i]
			frac := (budget - lo.Budget) / (hi.Budget - lo.Budget)
			return lo.J + frac*(hi.J-lo.J), nil
		}
	}
	return knots[len(knots)-1].J, nil
}

// CurveIsConcave verifies the concavity invariant of a curve (used by
// tests and as a cheap self-check after construction): successive slopes
// must be non-increasing. The LP value function is concave only on its
// feasible domain Eb ≥ floor; the leading dead-region segment (flat zero
// from 0 to the idle floor) is excluded from the check.
func CurveIsConcave(knots []Knot) bool {
	for len(knots) > 1 && fpx.Zero(knots[0].J) && fpx.Zero(knots[1].J) {
		knots = knots[1:]
	}
	prev := math.Inf(1)
	for i := 1; i < len(knots); i++ {
		db := knots[i].Budget - knots[i-1].Budget
		if db <= 0 {
			return false
		}
		slope := (knots[i].J - knots[i-1].J) / db
		if slope > prev+1e-9 {
			return false
		}
		prev = slope
	}
	return true
}
