package core

import "math"

// FNV-1a 64-bit, written out locally so the fingerprint does not depend
// on hash/fnv allocating a hasher per call on the fleet hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) u8(v byte) {
	*h = (*h ^ fnv64(v)) * fnvPrime64
}

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.u8(byte(v >> (8 * i)))
	}
}

func (h *fnv64) f64(v float64) { h.u64(math.Float64bits(v)) }

// Fingerprint returns a canonical 64-bit hash of every field the solvers
// read: Period, POff, Alpha and each design point's (Accuracy, Power), in
// order. Design-point names are deliberately excluded — they never reach
// the LP, so two configurations differing only in labels produce
// bit-identical allocations and may share cache entries. The encoding is
// length-prefixed, so no two distinct configurations collide by
// concatenation; distinct float bit patterns (including -0 versus +0)
// hash distinctly.
//
// The solve cache (internal/cache) keys entries by this fingerprint plus
// the quantized budget. A 64-bit hash makes a cross-configuration
// collision astronomically unlikely (~2⁻⁶⁴ per pair), not impossible;
// callers needing hard isolation between configurations should use one
// cache per configuration.
func (c Config) Fingerprint() uint64 {
	h := fnv64(fnvOffset64)
	h.f64(c.Period)
	h.f64(c.POff)
	h.f64(c.Alpha)
	h.u64(uint64(len(c.DPs)))
	for _, d := range c.DPs {
		h.f64(d.Accuracy)
		h.f64(d.Power)
	}
	return uint64(h)
}
