// Package journal is the crash-safety substrate of reapd: an
// append-only, length-prefixed, CRC-checked write-ahead log of opaque
// payloads plus periodically compacted snapshots, owned by a Store
// rooted in one directory.
//
// Layout and invariants (see DESIGN.md "Failure model"):
//
//   - The directory holds snapshot files "snap-%016x" and log segments
//     "wal-%016x", both named by the sequence number (count of events
//     applied) at which they begin. A snapshot is one record holding
//     the state after its first `seq` events; the matching wal segment
//     holds the events that follow it.
//   - Every record is framed [4B big-endian payload length | 4B CRC-32C
//     of the payload | payload]. A record is valid only if its frame is
//     complete and the checksum matches; the first invalid record ends
//     the readable prefix of a segment — everything after it is
//     untrusted because framing is lost.
//   - Appends write the full record to the kernel (bufio build, flushed
//     per append) before returning, so an acknowledgment survives
//     kill -9; fdatasync frequency is the caller's policy (SyncAlways
//     per append, or explicit Sync calls on an interval) and bounds
//     loss on power failure, not process death.
//   - Compaction is atomic: the snapshot is written to a temp file,
//     fsynced, renamed into place, and only then are older segments and
//     snapshots removed. A crash at any point leaves a directory that
//     opens to a consistent prefix of history.
//   - Open recovers by picking the newest valid snapshot, replaying the
//     segments that follow it, and truncating a torn tail in place —
//     arbitrary trailing garbage never panics and never corrupts later
//     appends (Replay + truncate, fuzz-tested by FuzzReplay).
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// frameSize is the per-record framing overhead: 4 bytes payload length,
// 4 bytes CRC-32C.
const frameSize = 8

// MaxPayload bounds a single record. The limit exists so a corrupted
// length field cannot make a reader allocate gigabytes; reapd's journal
// events are tens of bytes and snapshots grow linearly with the fleet.
const MaxPayload = 64 << 20

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornTail reports that a segment ended in an incomplete or
// corrupted record. Replay surfaces it so callers can distinguish a
// clean tail from a truncated one; Open repairs it by truncating.
var ErrTornTail = errors.New("journal: torn tail")

// ErrDiskFull reports that an append could not reach stable storage
// because the device is out of space (ENOSPC or a short write). The
// daemon treats it as a mode change — flip to read-only degraded
// service — not a crash: solves need no disk.
var ErrDiskFull = errors.New("journal: disk full")

// ErrClosed reports a Store method called outside its appendable
// window: before Start or after Close/Abandon.
var ErrClosed = errors.New("journal: store not open for appends")

// ErrCorrupt reports a journal directory whose segment chain cannot
// reconstruct history — a missing segment or torn record mid-history.
// Unlike ErrTornTail at the tail (a crash artifact, repaired in place),
// corruption before the end means later events cannot be trusted.
var ErrCorrupt = errors.New("journal: corrupt directory")

// frameInto writes payload's frame header and body into buf, which
// must be frameSize+len(payload) bytes.
func frameInto(buf, payload []byte) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameSize:], payload)
}

// readRecord reads one framed record from r. It returns io.EOF on a
// clean end (no bytes of a further record), and ErrTornTail when the
// stream ends mid-record or the checksum fails.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var frame [frameSize]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: incomplete frame", ErrTornTail)
	}
	n := binary.BigEndian.Uint32(frame[0:4])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrTornTail, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: incomplete payload", ErrTornTail)
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(frame[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrTornTail)
	}
	return payload, nil
}

// EncodeFrame returns payload framed as one journal record — the same
// [length|CRC-32C|payload] framing segments use. The replication stream
// reuses it so a follower validates shipped bytes with the exact parser
// its own boot replay trusts.
func EncodeFrame(payload []byte) []byte { return newFrameBuffer(payload) }

// ReadFrame reads one framed record from r. It returns io.EOF on a
// clean end and ErrTornTail when the stream dies mid-record or the
// checksum fails — a replication tailer maps the latter to a
// reconnect-and-resync, never an apply.
func ReadFrame(r *bufio.Reader) ([]byte, error) { return readRecord(r) }

// scanSegment reads every valid record of the file at path, calling fn
// for each. It returns the byte offset of the end of the valid prefix
// and whether the tail beyond it is torn. An error from fn aborts the
// scan.
func scanSegment(path string, fn func(payload []byte) error) (validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		payload, rerr := readRecord(r)
		if rerr != nil {
			if errors.Is(rerr, ErrTornTail) {
				return validEnd, true, nil
			}
			return validEnd, false, nil // clean EOF
		}
		if err := fn(payload); err != nil {
			return validEnd, false, err
		}
		validEnd += int64(frameSize + len(payload))
	}
}
