package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this file's position, so
// the loader tests work regardless of the test process's working
// directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestPackagesLoadsAndTypeChecks(t *testing.T) {
	pkgs, err := Packages(moduleRoot(t), "repro/internal/core", "repro")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.Pkg.Path()] = true
		if len(p.Files) == 0 {
			t.Errorf("package %s has no syntax", p.Pkg.Path())
		}
		if len(p.TypesInfo.Defs) == 0 {
			t.Errorf("package %s has no type info", p.Pkg.Path())
		}
	}
	if !byPath["repro"] || !byPath["repro/internal/core"] {
		t.Fatalf("loaded %v, want repro and repro/internal/core", byPath)
	}
}

func TestPackagesPatternAll(t *testing.T) {
	pkgs, err := Packages(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("Packages ./...: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("got %d packages for ./..., expected the whole module", len(pkgs))
	}
}
