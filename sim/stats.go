package sim

import (
	"fmt"
	"math"
	"sort"
)

// Statistics helpers for distribution metrics and the statistical
// golden harness: nearest-rank percentiles (the same convention
// cmd/reapload uses for latency quantiles, so sim metrics and serving
// metrics read alike), fixed-bucket histograms, and a seeded
// confidence-interval helper so multi-seed scenario tests bound
// stochastic metrics instead of pinning them to brittle point values.

// Percentile returns the q-quantile (0 < q ≤ 1) of a sorted sample by
// the nearest-rank rule: the element at rank round(q·n), 1-based,
// clamped into the sample. It matches cmd/reapload's latency
// percentiles digit for digit on the same data. An empty sample
// returns 0.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Distribution summarizes a sample: count, moments, extremes and the
// nearest-rank p50/p90/p99 tail points. The zero value describes the
// empty sample.
type Distribution struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize computes a Distribution from samples. NaN samples are
// rejected with an error wrapping ErrInvalidScenario — a NaN in a
// metric stream means the simulation itself went wrong, and folding it
// into a percentile would hide that. The input is not modified.
func Summarize(samples []float64) (Distribution, error) {
	if len(samples) == 0 {
		return Distribution{}, nil
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	var sum float64
	for _, v := range sorted {
		if math.IsNaN(v) {
			return Distribution{}, fmt.Errorf("%w: NaN sample in distribution", ErrInvalidScenario)
		}
		sum += v
	}
	sort.Float64s(sorted)
	return Distribution{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Percentile(sorted, 0.50),
		P90:   Percentile(sorted, 0.90),
		P99:   Percentile(sorted, 0.99),
	}, nil
}

// Histogram is a fixed-width bucket count over [Lo, Lo+Width·len(Counts)).
// Samples below Lo land in the first bucket and samples at or above the
// upper edge land in the last, so the counts always sum to the sample
// size — tails are visible as mass in the edge buckets rather than
// silently dropped.
type Histogram struct {
	Lo     float64 `json:"lo"`
	Width  float64 `json:"width"`
	Counts []int   `json:"counts"`
}

// NewHistogram buckets samples into n equal-width bins spanning
// [lo, hi). It panics only via invalid arguments (n ≤ 0 or hi ≤ lo are
// programming errors, not data errors); NaN samples count into the
// first bucket and should be screened with Summarize first.
func NewHistogram(samples []float64, lo, hi float64, n int) Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("sim: NewHistogram(n=%d, lo=%v, hi=%v): invalid shape", n, lo, hi))
	}
	h := Histogram{Lo: lo, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, v := range samples {
		i := int((v - lo) / h.Width)
		if !(i > 0) { // catches NaN as well as the low tail
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// MeanCI returns the two-sided confidence interval for the mean of
// samples at the given confidence level (e.g. 0.95), using the normal
// approximation with the sample standard deviation. It needs at least
// two samples and a confidence in (0, 1); NaN samples are rejected.
//
// This is the statistical golden harness seam: a multi-seed scenario
// test runs the same world under k seeds, feeds the per-seed metric
// here, and asserts the pinned expectation lies inside the interval —
// bounding a stochastic outcome instead of byte-pinning it, in the
// spirit of seeded CI estimation for stochastic models.
func MeanCI(samples []float64, confidence float64) (lo, hi float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("%w: confidence interval needs >= 2 samples, got %d", ErrInvalidScenario, len(samples))
	}
	if !(confidence > 0 && confidence < 1) {
		return 0, 0, fmt.Errorf("%w: confidence %v outside (0, 1)", ErrInvalidScenario, confidence)
	}
	var sum float64
	for _, v := range samples {
		if math.IsNaN(v) {
			return 0, 0, fmt.Errorf("%w: NaN sample in confidence interval", ErrInvalidScenario)
		}
		sum += v
	}
	n := float64(len(samples))
	mean := sum / n
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	z := math.Sqrt2 * math.Erfinv(confidence)
	half := z * sd / math.Sqrt(n)
	return mean - half, mean + half, nil
}
