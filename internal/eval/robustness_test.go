package eval

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestRobustnessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := Robustness(smallCorpus(t), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5*len(synth.Faults()) {
		t.Fatalf("%d cells", len(res.Cells))
	}
	// Every fault degrades every design point relative to clean (some
	// slack for sampling noise).
	for _, c := range res.Cells {
		if c.AccuracyPct > res.CleanPct[c.DP]+2 {
			t.Errorf("%s under %v: %.1f%% above clean %.1f%%",
				c.DP, c.Fault, c.AccuracyPct, res.CleanPct[c.DP])
		}
		if c.AccuracyPct < 0 || c.AccuracyPct > 100 {
			t.Errorf("%s under %v: %.1f%% out of range", c.DP, c.Fault, c.AccuracyPct)
		}
		// Systematic corruption can push accuracy below chance (the
		// classifier is confidently wrong off-manifold); no lower bound
		// beyond 0 is asserted.
	}
	// A detached stretch band hurts the stretch-only DP5 catastrophically
	// but leaves the accel-rich DP1 serviceable.
	dp5, _ := res.Accuracy("DP5", synth.StretchDetached)
	dp1, _ := res.Accuracy("DP1", synth.StretchDetached)
	if dp5 >= dp1 {
		t.Errorf("stretch-detached: DP5 %.1f%% not below DP1 %.1f%%", dp5, dp1)
	}
	if dp1 < 25 {
		t.Errorf("stretch-detached DP1 %.1f%%, accel should keep it above chance", dp1)
	}
	// A stuck accel axis cannot hurt DP5 (no accelerometer) beyond noise.
	clean5 := res.CleanPct["DP5"]
	stuck5, _ := res.Accuracy("DP5", synth.StuckAxis)
	if clean5-stuck5 > 1.5 {
		t.Errorf("stuck accel axis cost stretch-only DP5 %.1f points", clean5-stuck5)
	}
	if !strings.Contains(res.Render(), "stuck-axis") {
		t.Error("render incomplete")
	}
}
