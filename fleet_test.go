package reap

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFleetStepAllMatchesSequential checks that the concurrent fleet path
// produces exactly the schedules a sequential per-device loop would, over
// 1000 devices spanning every operating region. WithoutSolveCache here is
// belt-and-braces: uncached solving is the default since the plan-first
// re-tier, and the opted-in quantizing cache has its own test
// (TestFleetOptInCacheWithinQuantizationBound). Run under -race this is
// also the fleet's data-race test.
func TestFleetStepAllMatchesSequential(t *testing.T) {
	const n = 1000
	ctx := context.Background()

	fleet, err := NewFleet(n, WithBattery(20, 100), WithoutSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fleet.CacheStats(); ok {
		t.Fatal("WithoutSolveCache fleet reports a cache")
	}
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 11.0 * float64(i) / n // dead region through saturation
	}

	allocs, err := fleet.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != n {
		t.Fatalf("%d allocations for %d devices", len(allocs), n)
	}

	for i, alloc := range allocs {
		ref, err := New(WithBattery(20, 100))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Step(budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		dev, err := fleet.Device(i)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dev.Config()
		if math.Abs(alloc.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
			t.Fatalf("device %d: fleet %v, sequential %v", i, alloc, want)
		}
	}

	// Second period: the per-device battery state must have evolved
	// independently and ReportAll must close every loop.
	consumed := make([]float64, n)
	for i, alloc := range allocs {
		dev, err := fleet.Device(i)
		if err != nil {
			t.Fatal(err)
		}
		consumed[i] = alloc.Energy(dev.Config())
	}
	if err := fleet.ReportAll(consumed); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.StepAll(ctx, budgets); err != nil {
		t.Fatal(err)
	}
	dev0, err := fleet.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	if dev0.Steps() != 2 {
		t.Fatalf("device 0 stepped %d times, want 2", dev0.Steps())
	}
}

// TestFleetDeviceOutOfRange is the regression test for the Device panic:
// out-of-range indices must return an ErrInvalidConfig error, not panic.
func TestFleetDeviceOutOfRange(t *testing.T) {
	fleet, err := NewFleet(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 3, 1000} {
		dev, err := fleet.Device(i)
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("Device(%d): err %v, want ErrInvalidConfig", i, err)
		}
		if dev != nil {
			t.Fatalf("Device(%d) returned a controller with its error", i)
		}
	}
	if dev, err := fleet.Device(2); err != nil || dev == nil {
		t.Fatalf("Device(2) = %v, %v, want a controller", dev, err)
	}
}

// maxMarginalValue is the LP value function's initial (and, by
// concavity, maximal) slope in the budget: max_i aᵢ^α/(TP·(Pᵢ−Poff)).
// It bounds the objective a quantized-down solve can lose.
func maxMarginalValue(cfg Config) float64 {
	var slope float64
	for _, d := range cfg.DPs {
		w := math.Pow(d.Accuracy, cfg.Alpha)
		if cfg.Alpha == 0 {
			w = 1
		}
		if s := w / (cfg.Period * (d.Power - cfg.POff)); s > slope {
			slope = s
		}
	}
	return slope
}

// TestFleetOptInCacheWithinQuantizationBound checks a fleet with the
// opted-in quantizing solve cache against a default (plan-direct)
// fleet: every cached allocation stays feasible for the true budget and
// loses at most resolution·maxslope objective.
func TestFleetOptInCacheWithinQuantizationBound(t *testing.T) {
	const n = 500
	ctx := context.Background()
	cached, err := NewFleet(n, WithSolveCache(DefaultCacheSize, DefaultCacheResolution))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewFleet(n)
	if err != nil {
		t.Fatal(err)
	}

	// 50 distinct budget levels across the fleet: plenty of sharing, all
	// operating regions covered. Battery-less devices keep the effective
	// budget equal to the harvested energy, so the bound is checkable.
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 11.0 * float64(i%50) / 50
	}
	cachedAllocs, err := cached.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}
	exactAllocs, err := exact.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	bound := DefaultCacheResolution*maxMarginalValue(cfg) + 1e-9
	for i := range cachedAllocs {
		if energy := cachedAllocs[i].Energy(cfg); energy > budgets[i]+1e-9 {
			t.Fatalf("device %d: cached allocation spends %v J of a %v J budget", i, energy, budgets[i])
		}
		if loss := exactAllocs[i].Objective(cfg) - cachedAllocs[i].Objective(cfg); loss > bound || loss < -1e-9 {
			t.Fatalf("device %d: objective loss %v outside [0, %v]", i, loss, bound)
		}
	}

	stats, ok := cached.CacheStats()
	if !ok {
		t.Fatal("opted-in fleet reports no cache")
	}
	if lookups := stats.Hits + stats.Misses + stats.Coalesced; lookups != n {
		t.Fatalf("cache saw %d lookups for %d devices", lookups, n)
	}
	if stats.Misses > 50 {
		t.Fatalf("%d misses for 50 distinct budget levels", stats.Misses)
	}
	if stats.Hits+stats.Coalesced < n-50 {
		t.Fatalf("stats %+v: want at least %d lookups deduplicated", stats, n-50)
	}
}

// TestFleetCacheStatsDistinguishesAbsentFromCold is the regression test
// for the stats ambiguity the reapd stats endpoint depends on: a fleet
// without a cache answers ok=false, while a fleet whose opted-in cache
// has simply never been hit answers ok=true with zero counters. Before
// the (CacheStats, bool) signature both cases read as zero-value stats.
func TestFleetCacheStatsDistinguishesAbsentFromCold(t *testing.T) {
	uncached, err := NewFleet(3) // plan-direct default: no cache
	if err != nil {
		t.Fatal(err)
	}
	if stats, ok := uncached.CacheStats(); ok {
		t.Fatalf("default (plan-direct) fleet reports a cache: %+v", stats)
	}

	cold, err := NewFleet(3, WithSolveCache(64, DefaultCacheResolution))
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := cold.CacheStats()
	if !ok {
		t.Fatal("opted-in fleet reports no cache")
	}
	if stats != (CacheStats{Capacity: 64}) {
		t.Fatalf("cold cache stats = %+v, want zero counters with capacity 64", stats)
	}
}

func TestFleetStepAllWorkerBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		fleet, err := NewFleet(50, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		budgets := make([]float64, 50)
		for i := range budgets {
			budgets[i] = 5
		}
		allocs, err := fleet.StepAll(context.Background(), budgets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, a := range allocs {
			if a.Total() == 0 {
				t.Fatalf("workers=%d: device %d unplanned", workers, i)
			}
		}
	}
}

func TestFleetStepAllBudgetMismatch(t *testing.T) {
	fleet, err := NewFleet(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.StepAll(context.Background(), []float64{1, 2}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("mismatched budgets: err %v, want ErrInvalidConfig", err)
	}
	if err := fleet.ReportAll([]float64{1}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("mismatched reports: err %v, want ErrInvalidConfig", err)
	}
}

func TestFleetStepAllPartialFailure(t *testing.T) {
	fleet, err := NewFleet(5)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{5, math.NaN(), 5, -1, 5}
	allocs, err := fleet.StepAll(context.Background(), budgets)
	if err == nil {
		t.Fatal("bad budgets accepted")
	}
	if !errors.Is(err, ErrBudgetNegative) {
		t.Fatalf("err %v, want ErrBudgetNegative in the chain", err)
	}
	// The error names the failing devices; the healthy ones still planned.
	for _, d := range []string{"device 1", "device 3"} {
		if !strings.Contains(err.Error(), d) {
			t.Errorf("error %q does not name %s", err, d)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if allocs[i].Total() == 0 {
			t.Errorf("healthy device %d unplanned", i)
		}
	}
}

func TestFleetStepAllCancelled(t *testing.T) {
	fleet, err := NewFleet(100, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	budgets := make([]float64, 100)
	if _, err := fleet.StepAll(ctx, budgets); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled StepAll: err %v, want context.Canceled", err)
	}
}

func TestSolveBatchMatchesDirectSolve(t *testing.T) {
	ctx := context.Background()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	solver := LookupSolverMust(t, SolverSimplex)

	reqs := make([]Request, 200)
	for i := range reqs {
		reqs[i] = Request{Budget: 11.0 * float64(i) / float64(len(reqs))}
	}
	results := SolveBatch(ctx, reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		want, err := solver.Solve(ctx, cfg, reqs[i].Budget)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Allocation.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
			t.Fatalf("request %d: batch %v, direct %v", i, res.Allocation, want)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	if results := SolveBatch(context.Background(), nil); len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}

// The registry is append-only and process-global, so tests that need a
// bespoke backend register one hooked solver once and swap its behaviour
// per test run (keeps -count=N reruns working).
var (
	registerHookedSolverOnce sync.Once
	hookedSolve              atomic.Pointer[SolverFunc]
)

const hookedSolverName = "test-hooked"

func registerHookedSolver(t *testing.T) {
	t.Helper()
	registerHookedSolverOnce.Do(func() {
		err := RegisterSolver(hookedSolverName, SolverFunc(
			func(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
				return (*hookedSolve.Load())(ctx, cfg, budget)
			}))
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSolveBatchCancellationMidBatch cancels the context from inside the
// tenth solve: items completed before the cancellation keep their
// results, everything else — abandoned or refused mid-flight — reports
// context.Canceled.
func TestSolveBatchCancellationMidBatch(t *testing.T) {
	registerHookedSolver(t)
	simplex := LookupSolverMust(t, SolverSimplex)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n, cancelAt = 200, 10
	var solves atomic.Int32
	fn := SolverFunc(func(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
		// Solve first, cancel after: the counted solves are guaranteed to
		// complete, so the assertions below are race-free on any core
		// count (in-flight workers may still finish their current solve
		// after the cancellation — bounded by the pool width).
		alloc, err := simplex.Solve(ctx, cfg, budget)
		if err == nil && solves.Add(1) == cancelAt {
			cancel()
		}
		return alloc, err
	})
	hookedSolve.Store(&fn)

	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Budget: 5, Solver: hookedSolverName}
	}
	results := SolveBatch(ctx, reqs)
	if len(results) != n {
		t.Fatalf("%d results for %d requests", len(results), n)
	}

	var completed, cancelled int
	for i, res := range results {
		switch {
		case res.Err == nil:
			if res.Allocation.Total() == 0 {
				t.Fatalf("request %d: no error but empty allocation", i)
			}
			completed++
		case errors.Is(res.Err, context.Canceled):
			if res.Allocation.Total() != 0 {
				t.Fatalf("request %d: cancelled but carries an allocation", i)
			}
			cancelled++
		default:
			t.Fatalf("request %d: unexpected error %v", i, res.Err)
		}
	}
	if completed < cancelAt {
		t.Fatalf("%d completed, want at least the %d solves that finished before cancellation", completed, cancelAt)
	}
	// Workers already inside a solve when the cancellation landed may
	// finish it; anything beyond one per worker means the pool kept
	// dispatching after cancellation.
	if limit := cancelAt + runtime.GOMAXPROCS(0); completed > limit {
		t.Fatalf("%d completed, want at most %d after cancellation at solve %d", completed, limit, cancelAt)
	}
	if cancelled == 0 {
		t.Fatal("no request observed the cancellation")
	}
}

// TestSolveBatchWithSolveCache opts a batch into a shared cache: one LP
// solve serves every same-bucket request, across batches.
func TestSolveBatchWithSolveCache(t *testing.T) {
	ctx := context.Background()
	sc, err := NewSolveCache(1024, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	want, err := LookupSolverMust(t, SolverSimplex).Solve(ctx, cfg, 5.00) // the bucket floor
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]Request, 100)
	for i := range reqs {
		reqs[i] = Request{Budget: 5.004 + 1e-4*float64(i%5)} // one 10 mJ bucket
	}
	for round := 0; round < 2; round++ {
		for i, res := range SolveBatch(ctx, reqs, WithSharedSolveCache(sc)) {
			if res.Err != nil {
				t.Fatalf("round %d request %d: %v", round, i, res.Err)
			}
			if math.Abs(res.Allocation.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
				t.Fatalf("round %d request %d: cached %v, want bucket-floor solve %v",
					round, i, res.Allocation, want)
			}
		}
	}
	stats := sc.Stats()
	if stats.Misses != 1 {
		t.Fatalf("%d LP solves for one bucket over two batches, want 1", stats.Misses)
	}
	if stats.Hits+stats.Coalesced != 199 {
		t.Fatalf("stats %+v: want 199 deduplicated lookups", stats)
	}
}

// TestSolveBatchBadOption: an option error fails the whole batch, one
// error per result.
func TestSolveBatchBadOption(t *testing.T) {
	results := SolveBatch(context.Background(), make([]Request, 3), WithSolveCache(-1, 1e-3))
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i, res := range results {
		if !errors.Is(res.Err, ErrInvalidConfig) {
			t.Fatalf("request %d: err %v, want ErrInvalidConfig", i, res.Err)
		}
	}
}

// TestFleetSetActive covers the churn seam: inactive devices get the
// zero allocation from StepAll, are skipped by ReportAll (battery and
// accounting frozen), and resume exactly where they left off.
func TestFleetSetActive(t *testing.T) {
	ctx := context.Background()
	fleet, err := NewFleet(3, WithBattery(20, 100))
	if err != nil {
		t.Fatal(err)
	}
	if n := fleet.ActiveCount(); n != 3 {
		t.Fatalf("fresh fleet has %d active devices, want 3", n)
	}
	if !fleet.Active(0) || fleet.Active(-1) || fleet.Active(3) {
		t.Fatal("activity of fresh fleet / out-of-range devices misreported")
	}
	if err := fleet.SetActive(1, false); err != nil {
		t.Fatal(err)
	}
	if fleet.Active(1) || fleet.ActiveCount() != 2 {
		t.Fatalf("device 1 still counted active after SetActive(false)")
	}
	if err := fleet.SetActive(3, false); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("out-of-range SetActive: got %v, want ErrInvalidConfig", err)
	}

	dev1, err := fleet.Device(1)
	if err != nil {
		t.Fatal(err)
	}
	before := dev1.Battery()

	budgets := []float64{5, 5, 5}
	allocs, err := fleet.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if got := (Allocation{}); len(allocs[1].Active) != 0 || allocs[1].Off != got.Off || allocs[1].Dead != got.Dead {
		t.Fatalf("inactive device planned %+v, want zero allocation", allocs[1])
	}
	if len(allocs[0].Active) == 0 && allocs[0].Off == 0 && allocs[0].Dead == 0 {
		t.Fatal("active device 0 got a zero allocation")
	}
	if err := fleet.ReportAll([]float64{4, 999, 4}); err != nil {
		t.Fatal(err)
	}
	if after := dev1.Battery(); after != before {
		t.Fatalf("inactive device's battery moved: %v -> %v", before, after)
	}

	// Reactivation resumes from the frozen state.
	if err := fleet.SetActive(1, true); err != nil {
		t.Fatal(err)
	}
	if fleet.ActiveCount() != 3 {
		t.Fatal("reactivated device not counted")
	}
	allocs, err = fleet.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs[1].Active) == 0 && allocs[1].Off == 0 && allocs[1].Dead == 0 {
		t.Fatal("reactivated device still got the zero allocation")
	}

	// SetActive(true) on a fleet that never churned stays nil-masked
	// (the zero-cost hot path) and is a no-op.
	fresh, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetActive(0, true); err != nil {
		t.Fatal(err)
	}
	if fresh.ActiveCount() != 2 {
		t.Fatal("no-op SetActive(true) changed membership")
	}
}
