package lp

import "math"

// RangeRHS reports, for one inequality constraint, how far its right-hand
// side can move in each direction before the current optimal basis stops
// being feasible — the classic RHS ranging of sensitivity analysis.
// Within the returned interval [lo, hi] (absolute RHS values, not deltas)
// the set of basic variables — and therefore the *structure* of the
// optimal solution and all dual values — is unchanged; the solution
// values themselves vary linearly.
//
// REAP uses this on the energy constraint: as long as the next hour's
// budget stays inside the range, the optimal design-point mix only
// rescales, so the controller can update the allocation by closed form
// instead of re-running the simplex.
//
// The function solves the problem internally (it needs the optimal
// tableau). Equality rows and non-optimal outcomes return ok=false.
func RangeRHS(p *Problem, row int) (lo, hi float64, ok bool) {
	if err := p.Validate(); err != nil {
		return 0, 0, false
	}
	if row < 0 || row >= len(p.Constraints) || p.Constraints[row].Op == EQ {
		return 0, 0, false
	}
	n := p.NumVars()
	m := p.NumConstraints()
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 100 * (n + m + 10)
	}

	t, meta, nArt := buildWithMeta(p)
	iters := 0
	if nArt > 0 {
		st, it := t.iterate(maxIter)
		iters += it
		if st != Optimal || t.rows[t.m][t.total] > 1e-7 {
			return 0, 0, false
		}
		t.dropArtificials(nArt)
		t.setObjective(p.Objective)
	}
	if st, _ := t.iterate(maxIter - iters); st != Optimal {
		return 0, 0, false
	}

	// The slack column of the target row holds B⁻¹·eᵣ (up to the surplus
	// sign): perturbing the normalized RHS by Δ moves each basic value
	// b_i by Δ·col_i. Feasibility requires b_i + Δ·col_i ≥ 0 for every
	// structural row.
	col := meta[row].slackCol
	sign := 1.0
	if meta[row].surplus {
		sign = -1 // surplus column carries -e_r
	}
	loD, hiD := math.Inf(-1), math.Inf(1)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < 0 {
			continue // redundant row cleared during phase 1
		}
		c := sign * t.rows[i][col]
		b := t.rows[i][t.total]
		switch {
		case c > eps:
			// b + Δ·c ≥ 0 → Δ ≥ -b/c.
			if d := -b / c; d > loD {
				loD = d
			}
		case c < -eps:
			// Δ ≤ b/(-c).
			if d := b / -c; d < hiD {
				hiD = d
			}
		}
	}
	// Translate deltas on the NORMALIZED row back to the original RHS
	// orientation (a flipped row negates the delta direction).
	rhs := p.Constraints[row].RHS
	if meta[row].flip < 0 {
		loD, hiD = -hiD, -loD
	}
	return rhs + loD, rhs + hiD, true
}
