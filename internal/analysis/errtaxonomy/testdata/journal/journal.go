// Fixture for the errtaxonomy analyzer, loaded as
// repro/internal/journal: the service routes on this package's
// sentinels (ErrDiskFull → degraded read-only mode, ErrCompacted →
// snapshot bootstrap), so an error that wraps none of them silently
// disables a failure mode.
package journal

import (
	"errors"
	"fmt"
)

// Sentinel definitions are legal uses of errors.New — they ARE the
// taxonomy.
var (
	ErrDiskFull  = errors.New("journal: disk full")
	ErrCompacted = errors.New("journal: sequence compacted away")
)

// Append wraps the sentinel with %w: errors.Is(err, ErrDiskFull)
// reaches it and the daemon degrades instead of crashing.
func Append(free int) error {
	if free == 0 {
		return fmt.Errorf("%w: 0 bytes free", ErrDiskFull)
	}
	return nil
}

// Fresh returns a brand-new error that wraps nothing: the degraded
// path can never trigger on it.
func Fresh() error {
	return errors.New("out of space") // want `Fresh returns errors\.New\(\.\.\.\), which wraps no sentinel`
}

// Unwrapped formats without %w, severing the errors.Is chain.
func Unwrapped(seq uint64) error {
	return fmt.Errorf("seq %d compacted away", seq) // want `Unwrapped returns fmt\.Errorf without %w`
}
