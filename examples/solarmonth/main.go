// solarmonth reproduces the Section 5.4 case study: a wearable harvesting
// solar energy in Golden, CO for a month, re-planning every hour with the
// REAP controller (battery + energy-accounting feedback), compared against
// the static design points.
package main

import (
	"fmt"

	"repro"
	"repro/internal/device"
	"repro/internal/solar"
)

func main() {
	tr, err := solar.September2015()
	if err != nil {
		panic(err)
	}
	mean, std := tr.Stats()
	fmt.Printf("synthetic September 2015 at Golden, CO: %.0f J harvested, peak %.1f J/h, daylight mean %.1f±%.1f J/h\n",
		tr.Total(), tr.Peak(), mean, std)

	// Smooth the harvest through a small battery, as the paper's energy
	// allocation layer does.
	budgets := solar.DefaultBatteryAllocator().Budgets(tr.Hours)

	cfg, err := reap.NewConfig()
	if err != nil {
		panic(err)
	}
	sim := &device.Simulator{Cfg: cfg}

	reapRun, err := sim.Run(device.REAPPolicy{}, budgets)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%-6s mean E{a} %.3f   active %5.1f h   consumed %6.0f J\n",
		"REAP", reapRun.MeanExpectedAccuracy(), reapRun.TotalActiveTime()/3600, reapRun.TotalConsumed())
	for i := range cfg.DPs {
		run, err := sim.Run(device.StaticPolicy{Index: i}, budgets)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s mean E{a} %.3f   active %5.1f h   consumed %6.0f J\n",
			run.Policy, run.MeanExpectedAccuracy(), run.TotalActiveTime()/3600, run.TotalConsumed())
	}

	// Closed loop with the runtime controller: battery state + feedback.
	ctl, err := reap.New(reap.WithConfig(cfg), reap.WithBattery(20, 100))
	if err != nil {
		panic(err)
	}
	cl := &device.ClosedLoop{Controller: ctl, ExecutionNoise: 0.03, Seed: 1}
	outcomes, err := cl.Run(tr.Hours)
	if err != nil {
		panic(err)
	}
	regionHours := map[reap.Region]int{}
	for _, o := range outcomes {
		regionHours[o.Region]++
	}
	fmt.Printf("\nclosed-loop month with controller (3%% execution noise):\n")
	for _, r := range []reap.Region{reap.RegionDead, reap.Region1, reap.Region2, reap.Region3} {
		fmt.Printf("  %-8s %3d hours\n", r, regionHours[r])
	}
	fmt.Printf("  final battery %.1f J of 100 J\n", ctl.Battery())
}
