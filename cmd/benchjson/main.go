// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the format of the committed solver
// benchmark trajectory (BENCH_solve.json) and of the artifact the CI
// bench-smoke job uploads on every run.
//
// Usage:
//
//	go test -run '^$' -bench 'FleetStepAll|SolvePlan' -benchmem . | benchjson > BENCH_solve.json
//
// Each benchmark line becomes one entry keyed by its name (with the
// -cpu suffix stripped, so trajectories diff cleanly across machines
// with different core counts):
//
//	{"benchmarks": {"BenchmarkFleetStepAll/uncached-plan/10000":
//	    {"ns_per_op": 1016034, "allocs_per_op": 10004, "bytes_per_op": 1055616}, ...}}
//
// Lines that are not benchmark results (the header, PASS/ok trailers)
// pass through to the "context" field so a trajectory records which
// package, CPU and Go version produced it.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements. Allocation counters are
// pointers so benchmarks run without -benchmem encode as null rather
// than a misleading zero.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

type document struct {
	Context    []string          `json:"context,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFleetStepAll/cached/10000-4  100  42 ns/op  16 B/op  2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	doc := document{Benchmarks: map[string]result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
				strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:") {
				doc.Context = append(doc.Context, line)
			}
			continue
		}
		var r result
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			r.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseFloat(m[5], 64)
			r.AllocsPerOp = &v
		}
		doc.Benchmarks[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	// encoding/json sorts map keys, so the document is stable; indent
	// for reviewable diffs and echo the entry count to stderr.
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	names := make([]string, 0, len(doc.Benchmarks))
	for n := range doc.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (%s ... %s)\n", len(names), names[0], names[len(names)-1])
}
