package ble

import (
	"math"
	"testing"
)

func TestCalibrationPoints(t *testing.T) {
	// The link model must reproduce the paper's two measurements on a
	// clean link: 0.38 mJ per recognized-activity label, ~5.5 mJ per raw
	// window.
	if e := LabelEnergy() * 1e3; math.Abs(e-0.38) > 0.38*0.1 {
		t.Errorf("label energy %.3f mJ, want ~0.38", e)
	}
	if e := RawWindowEnergy() * 1e3; math.Abs(e-5.5) > 5.5*0.1 {
		t.Errorf("raw window energy %.3f mJ, want ~5.5", e)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LossRate: -0.1},
		{LossRate: 1.0},
		{LossRate: math.NaN()},
		{MaxRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := Transfer(c, 10); err == nil {
			t.Errorf("Transfer accepted case %d", i)
		}
		if _, err := ExpectedEnergy(c, 10); err == nil {
			t.Errorf("ExpectedEnergy accepted case %d", i)
		}
	}
	if _, err := Transfer(Config{}, -1); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestFragmentation(t *testing.T) {
	cases := []struct {
		bytes, pdus int
	}{
		{0, 0}, {1, 1}, {27, 1}, {28, 2}, {54, 2}, {1280, 48},
	}
	for _, tc := range cases {
		res, err := Transfer(Config{}, tc.bytes)
		if err != nil {
			t.Fatal(err)
		}
		if res.PDUs != tc.pdus {
			t.Errorf("%d bytes -> %d PDUs, want %d", tc.bytes, res.PDUs, tc.pdus)
		}
		if !res.Delivered {
			t.Errorf("%d bytes undelivered on a clean link", tc.bytes)
		}
		if res.Transmissions != res.PDUs {
			t.Errorf("%d bytes: %d transmissions on a clean link, want %d",
				tc.bytes, res.Transmissions, res.PDUs)
		}
	}
}

func TestZeroPayloadIsFree(t *testing.T) {
	res, err := Transfer(Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != 0 || res.AirTime != 0 {
		t.Fatalf("zero payload cost %v J / %v s", res.Energy, res.AirTime)
	}
	e, err := ExpectedEnergy(Config{}, 0)
	if err != nil || e != 0 {
		t.Fatalf("expected energy %v, err %v", e, err)
	}
}

func TestLossCausesRetransmissions(t *testing.T) {
	lossy := Config{LossRate: 0.3, MaxRetries: 10, Seed: 5}
	res, err := Transfer(lossy, 1280)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("48 PDUs with 10 retries at 30% loss should deliver")
	}
	if res.Transmissions <= res.PDUs {
		t.Fatalf("no retransmissions at 30%% loss: %d tx for %d PDUs",
			res.Transmissions, res.PDUs)
	}
	clean, err := Transfer(Config{}, 1280)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= clean.Energy {
		t.Fatalf("lossy transfer (%v J) not more expensive than clean (%v J)",
			res.Energy, clean.Energy)
	}
}

func TestRetryExhaustion(t *testing.T) {
	// 90% loss with zero retries: most PDUs of a large payload fail.
	hostile := Config{LossRate: 0.9, MaxRetries: 0, Seed: 7}
	res, err := Transfer(hostile, 1280)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("48 PDUs at 90% loss with no retries reported delivered")
	}
	if res.Transmissions != res.PDUs {
		t.Fatal("zero-retry config retransmitted")
	}
}

func TestExpectedEnergyMatchesSimulation(t *testing.T) {
	// Monte-Carlo mean of Transfer must converge to ExpectedEnergy.
	cfg := Config{LossRate: 0.2, MaxRetries: 8}
	want, err := ExpectedEnergy(cfg, 540)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		c := cfg
		c.Seed = int64(i)
		res, err := Transfer(c, 540)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Energy
	}
	got := sum / trials
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("simulated mean %v vs analytic %v", got, want)
	}
}

func TestExpectedEnergyMonotoneInLoss(t *testing.T) {
	prev := -1.0
	for loss := 0.0; loss < 0.9; loss += 0.1 {
		e, err := ExpectedEnergy(Config{LossRate: loss, MaxRetries: 20}, 1280)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Fatalf("energy not increasing with loss at %v", loss)
		}
		prev = e
	}
}

func TestTransferDeterministic(t *testing.T) {
	cfg := Config{LossRate: 0.4, MaxRetries: 5, Seed: 42}
	a, err := Transfer(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transfer(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Transmissions != b.Transmissions {
		t.Fatal("same seed diverged")
	}
}
