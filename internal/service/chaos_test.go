package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/wire"
)

// TestChaosStorm is the fault-injection proof: a real server with
// latency, panic and torn-connection injection enabled (and the journal
// on) takes concurrent traffic, and every fault is accounted for — a
// panic answers 500/CodePanic, a tear surfaces as a transport error,
// nothing kills the daemon, and a post-storm crash reboot replays the
// journal cleanly. Run under -race in CI.
func TestChaosStorm(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Devices: 16, Shards: 4, BatteryJ: 1e5, CapacityJ: 2e5,
		JournalDir: dir,
		Chaos: resilience.ChaosConfig{
			Seed:     42,
			LatencyP: 0.15, Latency: 2 * time.Millisecond,
			PanicP: 0.2,
			TearP:  0.15,
		},
	}
	svc := newTestService(t, cfg)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path string, body []byte) (int, string, error) {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			return resp.StatusCode, "", nil
		}
		var werr wire.ErrorResponse
		_ = json.Unmarshal(raw, &werr)
		return resp.StatusCode, werr.Error.Code, nil
	}

	solveBody := mustMarshal(t, &wire.SolveRequest{V: wire.Version, BudgetJ: 3})
	reportFor := func(device int) []byte {
		return mustMarshal(t, &wire.ReportRequest{
			V: wire.Version, Reports: []wire.DeviceReport{{Device: device, ConsumedJ: 0.001}},
		})
	}

	const workers = 8
	const perWorker = 40
	type tally struct{ ok, panics, tears, other int }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var status int
				var code string
				var err error
				if i%2 == 0 {
					status, code, err = post("/v1/solve", solveBody)
				} else {
					status, code, err = post("/v1/report", reportFor((w*perWorker+i)%16))
				}
				switch {
				case err != nil:
					tallies[w].tears++
				case status == http.StatusOK:
					tallies[w].ok++
				case status == http.StatusInternalServerError && code == wire.CodePanic:
					tallies[w].panics++
				default:
					tallies[w].other++
				}
			}
		}(w)
	}
	wg.Wait()

	var total tally
	for _, tl := range tallies {
		total.ok += tl.ok
		total.panics += tl.panics
		total.tears += tl.tears
		total.other += tl.other
	}
	t.Logf("chaos storm: %d ok, %d panics, %d tears, %d other", total.ok, total.panics, total.tears, total.other)

	_, injectedPanics, injectedTears := svc.chaos.Injected()
	if total.other != 0 {
		t.Errorf("%d responses were neither 200, 500/panic nor a tear", total.other)
	}
	if uint64(total.panics) != injectedPanics {
		t.Errorf("clients saw %d panic responses, injector fired %d — every injected panic must answer 500/%s",
			total.panics, injectedPanics, wire.CodePanic)
	}
	if uint64(total.tears) != injectedTears {
		t.Errorf("clients saw %d transport errors, injector tore %d connections", total.tears, injectedTears)
	}
	if injectedPanics == 0 || injectedTears == 0 {
		t.Errorf("storm injected no faults (panics %d, tears %d) — probabilities or volume too low",
			injectedPanics, injectedTears)
	}
	if got := svc.Stats().Panics; got != injectedPanics {
		t.Errorf("stats panics = %d, want the %d injected", got, injectedPanics)
	}

	// The daemon survived; now prove the journal did too. Kill it
	// uncleanly and reboot without chaos: replay must reconstruct
	// whatever was acknowledged mid-storm.
	preStates := deviceStates(t, svc)
	srv.Close()
	crashService(svc)

	calm := cfg
	calm.Chaos = resilience.ChaosConfig{}
	restored := newTestService(t, calm)
	defer restored.Close()
	expectStatesEqual(t, deviceStates(t, restored), preStates)
}

// TestChaosDeterministicAcrossRuns: the same seed against the same
// request sequence injects the same faults — what lets a failing chaos
// run be replayed exactly.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64, []int) {
		svc := newTestService(t, Config{Chaos: resilience.ChaosConfig{
			Seed: 7, PanicP: 0.3, LatencyP: 0.3, Latency: time.Microsecond,
		}})
		h := svc.Handler()
		var statuses []int
		for i := 0; i < 30; i++ {
			rec := do(t, h, http.MethodPost, "/v1/solve",
				mustMarshal(t, &wire.SolveRequest{V: wire.Version, BudgetJ: 1}))
			statuses = append(statuses, rec.Code)
		}
		l, p, tr := svc.chaos.Injected()
		return l, p, tr, statuses
	}
	l1, p1, t1, s1 := run()
	l2, p2, t2, s2 := run()
	if l1 != l2 || p1 != p2 || t1 != t2 {
		t.Errorf("fault counts diverged across identical runs: (%d,%d,%d) vs (%d,%d,%d)", l1, p1, t1, l2, p2, t2)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Errorf("status sequences diverged:\n%v\n%v", s1, s2)
	}
	if p1 == 0 {
		t.Error("no panics injected in 30 requests at P=0.3")
	}
}
