// Package sim is a deterministic, seedable scenario simulator for fleets
// of REAP devices: the closed loop the paper evaluates (harvest → solve →
// execute → report), scaled to N devices over multi-day horizons and made
// reproducible enough to diff byte-for-byte.
//
// A Scenario composes the repository's models end to end:
//
//   - internal/solar synthesizes the hourly harvest trace (clear-sky
//     geometry × Markov weather × cell model), scaled and jittered per
//     device;
//   - internal/forecast optionally turns the trace into EWMA-predicted
//     budgets, so devices plan on forecasts and absorb prediction error
//     through the controller's accounting loop;
//   - internal/synth streams per-device activity timelines whose hourly
//     intensity modulates realized consumption, plus injected sensor
//     faults with documented energy/utility effects;
//   - internal/energy prices the hourly fleet-telemetry BLE upload that
//     rides on top of every powered device's consumption;
//   - the public Fleet drives one Controller per device through
//     StepAll/ReportAll via the Fleet.Run closed-loop seam.
//
// Determinism: every random draw derives from Scenario.Seed through
// per-device, per-purpose sub-streams consumed in a fixed order, and the
// LP backends and solve cache are deterministic (the cache solves the
// quantized representative budget, so results do not depend on which
// device populated an entry). Two runs of the same scenario therefore
// produce byte-identical traces — the property the golden-trace harness
// in this package's tests locks down. Goldens are regenerated with
// `go test ./sim -run TestGolden -update`.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro"
	"repro/internal/energy"
	"repro/internal/forecast"
	"repro/internal/fpx"
	"repro/internal/solar"
	"repro/internal/synth"
)

// Scenario describes one deterministic simulation: the fleet, the
// harvest climate, the controller configuration, and the execution
// realism knobs. The zero value is not runnable; start from a library
// scenario (Library, Lookup) or fill the fields and let Run apply the
// documented defaults.
type Scenario struct {
	// Name identifies the scenario in traces and reports.
	Name string
	// Description is a one-line summary for listings.
	Description string

	// Devices is the fleet size; Days the simulated horizon. Each day is
	// 24 hourly activity periods.
	Devices, Days int
	// Seed derives every random stream in the run.
	Seed int64

	// Month and Year select the solar trace (internal/solar's Golden, CO
	// climate; the year seeds the Markov weather).
	Month, Year int
	// HarvestScale scales every hourly harvest (default 1). DeviceJitter
	// spreads a per-device multiplicative factor uniformly in
	// [1-j, 1+j]; zero gives every device an identical harvest, the
	// correlated-budget regime the solve cache exploits.
	HarvestScale, DeviceJitter float64

	// Alpha, BatteryJ, CapacityJ configure every controller (refine per
	// device with PerDevice). Solver names the registry backend; an
	// empty Solver resolves to simplex — deliberately pinned, rather
	// than following reap.DefaultSolver, so golden traces cannot move
	// when the registry default changes (the golden harness separately
	// asserts the plan backend reproduces them byte-for-byte). Workers
	// bounds StepAll's pool (0 = GOMAXPROCS).
	Alpha               float64
	BatteryJ, CapacityJ float64
	Solver              string
	Workers             int

	// Cache routes solves through a shared solve cache of CacheSize
	// entries (default reap.DefaultCacheSize) at CacheResolutionJ
	// (default reap.DefaultCacheResolution; negative selects the
	// cache's exact mode — no quantization, bit-identical to uncached,
	// dedup only). Without Cache the fleet solves exactly, uncached.
	Cache            bool
	CacheSize        int
	CacheResolutionJ float64

	// Forecast plans each budget from an EWMA prediction of the hour's
	// harvest (internal/forecast, per device) instead of the actual
	// value; the first day warms the predictor up on actuals.
	Forecast       bool
	ForecastLambda float64

	// Noise is the relative standard deviation of execution noise on
	// consumed energy. FaultRate is the per-device-hour probability of a
	// sensor fault episode (internal/synth's failure modes) with the
	// energy/utility effects documented at faultEffect. TelemetryBytes
	// is the hourly fleet-telemetry BLE payload every powered device
	// uploads (internal/energy's radio model; default 24 bytes).
	Noise, FaultRate float64
	TelemetryBytes   int

	// FlatConsumption makes execution exact: consumed = planned energy
	// (+ telemetry), no activity modulation, noise or faults. Used by
	// cache-correlation scenarios, where divergent consumption would
	// decorrelate budgets, and by differential baselines.
	FlatConsumption bool

	// PerDevice refines device i's options after the fleet-wide ones
	// (reap.WithDeviceOverride) — mixed-α, mixed-battery or
	// mixed-backend fleets.
	PerDevice func(device int) []reap.Option
}

// withDefaults fills the zero-value knobs with the documented defaults.
func (sc Scenario) withDefaults() Scenario {
	if fpx.Zero(sc.HarvestScale) {
		sc.HarvestScale = 1
	}
	if fpx.Zero(sc.Alpha) {
		sc.Alpha = 1
	}
	if sc.Solver == "" {
		sc.Solver = reap.SolverSimplex
	}
	if sc.CacheSize == 0 {
		sc.CacheSize = reap.DefaultCacheSize
	}
	if fpx.Zero(sc.CacheResolutionJ) {
		sc.CacheResolutionJ = reap.DefaultCacheResolution
	}
	if fpx.Zero(sc.ForecastLambda) {
		sc.ForecastLambda = 0.5
	}
	if sc.TelemetryBytes == 0 {
		sc.TelemetryBytes = 24
	}
	return sc
}

// Validate checks the scenario after defaults are applied.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario needs a name")
	}
	if sc.Devices <= 0 {
		return fmt.Errorf("sim: %s: %d devices must be positive", sc.Name, sc.Devices)
	}
	if sc.Month < 1 || sc.Month > 12 {
		return fmt.Errorf("sim: %s: month %d outside 1..12", sc.Name, sc.Month)
	}
	if sc.Days <= 0 || sc.Days > solar.DaysInMonth(sc.Month) {
		return fmt.Errorf("sim: %s: %d days outside 1..%d (month %d)",
			sc.Name, sc.Days, solar.DaysInMonth(sc.Month), sc.Month)
	}
	if sc.HarvestScale <= 0 || math.IsNaN(sc.HarvestScale) || math.IsInf(sc.HarvestScale, 0) {
		return fmt.Errorf("sim: %s: harvest scale %v must be positive and finite", sc.Name, sc.HarvestScale)
	}
	if sc.DeviceJitter < 0 || sc.DeviceJitter >= 1 || math.IsNaN(sc.DeviceJitter) {
		return fmt.Errorf("sim: %s: device jitter %v outside [0,1)", sc.Name, sc.DeviceJitter)
	}
	if sc.Noise < 0 || math.IsNaN(sc.Noise) {
		return fmt.Errorf("sim: %s: noise %v must be non-negative", sc.Name, sc.Noise)
	}
	if sc.FaultRate < 0 || sc.FaultRate > 1 || math.IsNaN(sc.FaultRate) {
		return fmt.Errorf("sim: %s: fault rate %v outside [0,1]", sc.Name, sc.FaultRate)
	}
	if sc.TelemetryBytes < 0 {
		return fmt.Errorf("sim: %s: telemetry payload %d must be non-negative", sc.Name, sc.TelemetryBytes)
	}
	return nil
}

// Result bundles one run's outputs: the fully-defaulted scenario, the
// per-step trace, summary metrics, each device's resolved configuration
// (needed to evaluate allocations from the trace), and the solve-cache
// statistics when the scenario caches.
type Result struct {
	Scenario   Scenario
	Trace      *Trace
	Summary    Summary
	Configs    []reap.Config
	CacheStats *reap.CacheStats
}

// Sub-stream salts: each randomized concern draws from its own
// deterministic stream so adding draws to one never perturbs another.
const (
	saltJitter = iota + 1
	saltTimeline
	saltNoise
	saltFault
)

// subSeed derives a per-device, per-purpose seed from the scenario seed
// (splitmix64 finalizer — consecutive inputs map to well-spread outputs).
func subSeed(seed int64, device int, salt int64) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(device+1) + 0xbf58476d1ce4e5b9*uint64(salt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// activityIntensity maps each synth activity class onto a motion-
// intensity coefficient in [0,1]; an hour's mean intensity modulates the
// consumption model (vigorous hours cost slightly more: extra interrupt
// handling and BLE retransmissions under motion artifacts).
var activityIntensity = [synth.NumActivities]float64{
	synth.Sit:        0.08,
	synth.Stand:      0.15,
	synth.Walk:       0.60,
	synth.Jump:       1.00,
	synth.Drive:      0.30,
	synth.LieDown:    0.02,
	synth.Transition: 0.45,
}

// faultEffect returns the consumption and utility multipliers of a fault
// episode lasting one activity period:
//
//   - StuckAxis: energy unchanged, recognition degraded (one axis lies).
//   - Dropout: the bus stall browns the period out partway — both
//     consumption and useful output are cut roughly in half.
//   - SpikeNoise: connector chatter re-triggers processing (slightly
//     more energy) and corrupts windows (less utility).
//   - StretchDetached: energy unchanged, stretch-dependent accuracy lost.
func faultEffect(f synth.Fault) (consumedScale, utilityScale float64) {
	switch f {
	case synth.StuckAxis:
		return 1.00, 0.85
	case synth.Dropout:
		return 0.55, 0.50
	case synth.SpikeNoise:
		return 1.08, 0.90
	case synth.StretchDetached:
		return 1.00, 0.80
	default:
		return 1, 1
	}
}

// simulator holds one run's state; it implements reap.HarvestSource and
// reap.ConsumptionModel, and records the trace from the step observer.
type simulator struct {
	sc    Scenario
	fleet *reap.Fleet
	cfgs  []reap.Config

	hours []float64 // scenario-scaled hourly harvest, shared across devices
	skies []solar.Sky

	jitter    []float64
	ewma      []*forecast.EWMA
	timelines []*synth.Timeline
	noiseRng  []*rand.Rand
	faultRng  []*rand.Rand

	telemetryJ float64

	// Per-step scratch, filled by Budgets/Consumed and read by observe.
	actual    []float64
	intensity []float64
	faults    []synth.Fault

	records []StepRecord
}

// Budgets implements reap.HarvestSource: actual harvest is the shared
// solar hour scaled per device; the budget handed to the fleet is either
// that actual value or, under Forecast, the device's EWMA prediction
// (actuals warm the predictor up during the first day).
func (s *simulator) Budgets(step int, dst []float64) error {
	h := s.hours[step]
	for i := range dst {
		actual := h * s.jitter[i]
		s.actual[i] = actual
		budget := actual
		if s.sc.Forecast {
			if step >= forecast.SlotsPerDay {
				budget = s.ewma[i].Predict(1)[0]
			}
			if err := s.ewma[i].Observe(actual); err != nil {
				return err
			}
		}
		dst[i] = budget
	}
	return nil
}

// Consumed implements reap.ConsumptionModel: realized consumption is the
// planned energy modulated by the hour's activity intensity, execution
// noise and fault episodes, plus the telemetry upload for powered
// devices. Under FlatConsumption it is exactly planned (+ telemetry).
func (s *simulator) Consumed(step int, allocs []reap.Allocation, dst []float64) error {
	for i := range dst {
		cfg := s.cfgs[i]
		planned := allocs[i].Energy(cfg)
		// A device dead for most of the period cannot run its hourly
		// telemetry upload.
		telemetry := s.telemetryJ
		if allocs[i].Dead >= cfg.Period/2 {
			telemetry = 0
		}
		s.faults[i] = synth.NoFault
		if s.sc.FlatConsumption {
			s.intensity[i] = 0
			dst[i] = planned + telemetry
			continue
		}
		intensity := s.hourIntensity(i)
		s.intensity[i] = intensity
		consumed := planned * (0.95 + 0.10*intensity)
		if s.sc.FaultRate > 0 && s.faultRng[i].Float64() < s.sc.FaultRate {
			faults := synth.Faults()
			f := faults[s.faultRng[i].Intn(len(faults))]
			s.faults[i] = f
			scale, _ := faultEffect(f)
			consumed *= scale
		}
		if s.sc.Noise > 0 {
			factor := 1 + s.sc.Noise*s.noiseRng[i].NormFloat64()
			factor = math.Min(1.5, math.Max(0.5, factor))
			consumed *= factor
		}
		consumed += telemetry
		if consumed < 0 {
			consumed = 0
		}
		dst[i] = consumed
	}
	return nil
}

// hourIntensity streams one hour of activity labels from device i's
// timeline and returns their mean intensity.
func (s *simulator) hourIntensity(i int) float64 {
	var sum float64
	for w := 0; w < synth.WindowsPerHour; w++ {
		sum += activityIntensity[s.timelines[i].NextLabel()]
	}
	return sum / synth.WindowsPerHour
}

// observe records one trace line per device for the completed step.
func (s *simulator) observe(step int, budgets []float64, allocs []reap.Allocation, consumed []float64) error {
	sky := s.skies[step].String()
	for i := range allocs {
		dev, err := s.fleet.Device(i)
		if err != nil {
			return err
		}
		cfg := s.cfgs[i]
		acc := allocs[i].ExpectedAccuracy(cfg)
		_, utilScale := faultEffect(s.faults[i])
		s.records = append(s.records, StepRecord{
			Step:         step,
			Device:       i,
			Sky:          sky,
			HarvestJ:     s.actual[i],
			BudgetJ:      budgets[i],
			SolveBudgetJ: dev.LastBudget(),
			Active:       append([]float64(nil), allocs[i].Active...),
			OffS:         allocs[i].Off,
			DeadS:        allocs[i].Dead,
			PlannedJ:     allocs[i].Energy(cfg),
			ConsumedJ:    consumed[i],
			BatteryJ:     dev.Battery(),
			Intensity:    s.intensity[i],
			Fault:        s.faults[i].String(),
			Accuracy:     acc,
			Utility:      acc * utilScale,
		})
	}
	return nil
}

// Run executes the scenario and returns its trace, summary metrics and
// per-device configurations. Same scenario (including seed) in, same
// trace bytes out — see the package comment for the determinism
// contract.
func Run(ctx context.Context, sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if _, err := reap.LookupSolver(sc.Solver); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}

	tr, err := solar.MonthlyTrace(sc.Month, sc.Year, solar.DefaultCell())
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	steps := sc.Days * 24

	opts := []reap.Option{
		reap.WithAlpha(sc.Alpha),
		reap.WithBattery(sc.BatteryJ, sc.CapacityJ),
		reap.WithSolver(sc.Solver),
		reap.WithWorkers(sc.Workers),
	}
	if sc.Cache {
		res := sc.CacheResolutionJ
		if res < 0 {
			res = 0 // exact mode
		}
		opts = append(opts, reap.WithSolveCache(sc.CacheSize, res))
	} else {
		// Uncached solving is NewFleet's default since the plan-first
		// re-tier; saying so explicitly keeps scenario semantics pinned
		// to the scenario definition rather than the library default.
		opts = append(opts, reap.WithoutSolveCache())
	}
	if sc.PerDevice != nil {
		opts = append(opts, reap.WithDeviceOverride(sc.PerDevice))
	}
	fleet, err := reap.NewFleet(sc.Devices, opts...)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}

	s := &simulator{
		sc:         sc,
		fleet:      fleet,
		cfgs:       make([]reap.Config, sc.Devices),
		hours:      make([]float64, steps),
		skies:      tr.Skies[:steps],
		jitter:     make([]float64, sc.Devices),
		telemetryJ: energy.BLETransmission(sc.TelemetryBytes),
		actual:     make([]float64, sc.Devices),
		intensity:  make([]float64, sc.Devices),
		faults:     make([]synth.Fault, sc.Devices),
		records:    make([]StepRecord, 0, steps*sc.Devices),
	}
	for h := 0; h < steps; h++ {
		s.hours[h] = tr.Hours[h] * sc.HarvestScale
	}

	batteryStart := 0.0
	for i := 0; i < sc.Devices; i++ {
		dev, err := fleet.Device(i)
		if err != nil {
			return nil, err
		}
		s.cfgs[i] = dev.Config()
		batteryStart += dev.Battery()
	}

	jitterRng := rand.New(rand.NewSource(subSeed(sc.Seed, 0, saltJitter)))
	for i := range s.jitter {
		s.jitter[i] = 1
		if sc.DeviceJitter > 0 {
			s.jitter[i] = 1 + sc.DeviceJitter*(2*jitterRng.Float64()-1)
		}
	}
	if sc.Forecast {
		s.ewma = make([]*forecast.EWMA, sc.Devices)
		for i := range s.ewma {
			if s.ewma[i], err = forecast.NewEWMA(sc.ForecastLambda); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
			}
		}
	}
	if !sc.FlatConsumption {
		s.timelines = make([]*synth.Timeline, sc.Devices)
		s.noiseRng = make([]*rand.Rand, sc.Devices)
		s.faultRng = make([]*rand.Rand, sc.Devices)
		for i := 0; i < sc.Devices; i++ {
			user := synth.NewUserProfile(i, sc.Seed)
			if s.timelines[i], err = synth.NewTimeline(user, 0, subSeed(sc.Seed, i, saltTimeline)); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
			}
			s.noiseRng[i] = rand.New(rand.NewSource(subSeed(sc.Seed, i, saltNoise)))
			s.faultRng[i] = rand.New(rand.NewSource(subSeed(sc.Seed, i, saltFault)))
		}
	}

	start := time.Now()
	if err := fleet.Run(ctx, steps, s, s, s.observe); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	elapsed := time.Since(start)

	batteryEnd := 0.0
	for i := 0; i < sc.Devices; i++ {
		dev, _ := fleet.Device(i)
		batteryEnd += dev.Battery()
	}

	res := &Result{
		Scenario: sc,
		Trace: &Trace{
			Scenario: sc.Name,
			Seed:     sc.Seed,
			Devices:  sc.Devices,
			Steps:    steps,
			Solver:   sc.Solver,
			Cached:   sc.Cache,
			Records:  s.records,
		},
		Configs: s.cfgs,
	}
	if stats, ok := fleet.CacheStats(); ok {
		res.CacheStats = &stats
	}
	res.Summary = summarize(res, batteryStart, batteryEnd, elapsed)
	return res, nil
}
