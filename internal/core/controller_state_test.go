package core

import (
	"math"
	"testing"

	"repro/internal/fpx"
)

// TestStateRestoreRoundTrip pins the crash-recovery contract: a fresh
// controller restored from another's State is indistinguishable from it
// — same battery, same carry, and byte-identical allocations for the
// same future harvests.
func TestStateRestoreRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	live, err := NewController(cfg, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Drive some history: steps, a consumption report, an alpha change.
	for _, h := range []float64{2, 5, 0.5} {
		if _, err := live.Step(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Report(1.25); err != nil {
		t.Fatal(err)
	}
	if err := live.SetAlpha(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Step(3); err != nil {
		t.Fatal(err)
	}

	restored, err := NewController(cfg, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(live.State()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := restored.State(), live.State(); got != want {
		t.Fatalf("restored state %+v != live state %+v", got, want)
	}
	if !fpx.Eq(restored.Battery(), live.Battery()) {
		t.Errorf("battery %v != %v", restored.Battery(), live.Battery())
	}
	if restored.Steps() != live.Steps() {
		t.Errorf("steps %d != %d", restored.Steps(), live.Steps())
	}

	// Future behavior must agree exactly.
	for _, h := range []float64{1, 4, 0} {
		a1, err1 := live.Step(h)
		a2, err2 := restored.Step(h)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step(%v): errors diverge: %v vs %v", h, err1, err2)
		}
		if !fpx.Eq(a1.Off, a2.Off) || !fpx.Eq(a1.Dead, a2.Dead) || len(a1.Active) != len(a2.Active) {
			t.Fatalf("step(%v): allocations diverge: %+v vs %+v", h, a1, a2)
		}
		for i := range a1.Active {
			if !fpx.Eq(a1.Active[i], a2.Active[i]) {
				t.Fatalf("step(%v): active[%d] %v != %v", h, i, a1.Active[i], a2.Active[i])
			}
		}
	}
}

func TestRestoreRejectsInvalidState(t *testing.T) {
	ctl, err := NewController(DefaultConfig(), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ControllerState{
		{BatteryJ: -1, Alpha: 1},
		{BatteryJ: 101, Alpha: 1},        // over capacity
		{BatteryJ: math.NaN(), Alpha: 1}, // NaN battery
		{BatteryJ: 5, CarryJ: math.NaN(), Alpha: 1},
		{BatteryJ: 5, Steps: -1, Alpha: 1},
		{BatteryJ: 5, Alpha: -2}, // invalid alpha
		{BatteryJ: 5, Alpha: math.NaN()},
	}
	before := ctl.State()
	for _, st := range bad {
		if err := ctl.Restore(st); err == nil {
			t.Errorf("Restore(%+v): want error", st)
		}
	}
	if ctl.State() != before {
		t.Error("failed Restore mutated controller state")
	}
}

// TestRestoreRecompilesPlan checks the alpha path: a controller running
// on a compiled plan restored to a different alpha must solve under the
// new alpha, matching a controller configured that way from scratch.
func TestRestoreRecompilesPlan(t *testing.T) {
	cfg := DefaultConfig()
	withPlan := func(alpha float64) *Controller {
		c := cfg
		c.Alpha = alpha
		ctl, err := NewController(c, 20, 100)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.SetPlan(p); err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	restored := withPlan(1)
	st := ControllerState{BatteryJ: 20, Alpha: 0.25}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	reference := withPlan(0.25)

	a1, err := restored.Step(4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := reference.Step(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Active {
		if !fpx.Eq(a1.Active[i], a2.Active[i]) {
			t.Fatalf("active[%d]: restored-plan %v != reference %v", i, a1.Active[i], a2.Active[i])
		}
	}
}
