package har

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fpx"
	"repro/internal/synth"
)

// Characterized is one fully characterized design point: what the paper's
// Figure 3 plots and Table 2 tabulates.
type Characterized struct {
	Spec DesignPointSpec
	// Accuracy is the test-split recognition accuracy in [0,1].
	Accuracy float64
	// Breakdown is the per-activity energy/time itemization.
	Breakdown energy.Breakdown
	// Model is the trained classifier (kept for pipeline simulation).
	Model *Model
}

// EnergyPerActivity is the Table 2 "Energy (mJ)" value, in joules.
func (c Characterized) EnergyPerActivity() float64 { return c.Breakdown.Total() }

// Power is the Table 2 "Power (mW)" value, in watts.
func (c Characterized) Power() float64 { return c.Breakdown.Power() }

// CoreDP converts the characterization into the (accuracy, power) pair the
// REAP optimizer consumes.
func (c Characterized) CoreDP() core.DesignPoint {
	return core.DesignPoint{Name: c.Spec.Name, Accuracy: c.Accuracy, Power: c.Power()}
}

// Characterize trains and prices every provided spec against the corpus.
// Design points are independent, so they are characterized concurrently.
func Characterize(ds *synth.Dataset, specs []DesignPointSpec) ([]Characterized, error) {
	out := make([]Characterized, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i]
			model, err := TrainModel(ds, spec)
			if err != nil {
				errs[i] = err
				return
			}
			breakdown, err := energy.Activity(spec.EnergyProfile())
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = Characterized{
				Spec:      spec,
				Accuracy:  model.TestAcc,
				Breakdown: breakdown,
				Model:     model,
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("har: characterizing %s: %w", specs[i].Name, err)
		}
	}
	return out, nil
}

// ParetoFront filters characterized points to the non-dominated set,
// ordered by decreasing power (DP1-first, like the paper).
func ParetoFront(points []Characterized) []Characterized {
	var front []Characterized
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			better := q.Accuracy >= p.Accuracy && q.Power() <= p.Power()
			strictly := q.Accuracy > p.Accuracy || q.Power() < p.Power()
			if better && strictly {
				dominated = true
				break
			}
			if j < i && fpx.Eq(q.Accuracy, p.Accuracy) && fpx.Eq(q.Power(), p.Power()) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.SliceStable(front, func(i, j int) bool { return front[i].Power() > front[j].Power() })
	return front
}

// CoreConfig assembles a REAP configuration from characterized design
// points (typically the Pareto front) using the paper's period and
// off-state power.
func CoreConfig(points []Characterized, alpha float64) core.Config {
	cfg := core.Config{
		Period: core.DefaultPeriod,
		POff:   energy.POff,
		Alpha:  alpha,
	}
	for _, p := range points {
		cfg.DPs = append(cfg.DPs, p.CoreDP())
	}
	return cfg
}
