// Package solar generates the hourly energy budgets that drive REAP's
// runtime decisions. The paper uses irradiance measured by the NREL Solar
// Radiation Research Laboratory in Golden, Colorado (2015–2018) feeding a
// FlexSolarCells SP3-37 flexible cell on the prototype; this package
// substitutes a clear-sky irradiance model for the same location, a seeded
// Markov weather process, and a small-cell harvesting model calibrated so
// hourly budgets span the paper's operating range (0.18 J idle floor to
// ~10 J, the energy that sustains DP1 for a full hour).
package solar

import (
	"fmt"
	"math"
)

// Location of the NREL Solar Radiation Research Laboratory, Golden, CO.
const (
	// GoldenLatitudeDeg is the site latitude in degrees north.
	GoldenLatitudeDeg = 39.74
	// SolarConstant is the Haurwitz clear-sky scale factor in W/m².
	SolarConstant = 1098.0
)

// dayOfYear returns the ordinal day for a (month, day) pair in a
// non-leap year (the sub-day error is irrelevant at this model fidelity).
func dayOfYear(month, day int) int {
	days := [...]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	n := day
	for m := 0; m < month-1; m++ {
		n += days[m]
	}
	return n
}

// DaysInMonth returns the day count of a month (1–12) in a non-leap year.
func DaysInMonth(month int) int {
	days := [...]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	if month < 1 || month > 12 {
		return 0
	}
	return days[month-1]
}

// SolarElevation returns the solar elevation angle in radians at the given
// site latitude for the given day of year and local solar hour (0–24).
func SolarElevation(latitudeDeg float64, doy int, hour float64) float64 {
	lat := latitudeDeg * math.Pi / 180
	// Cooper's declination formula.
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+doy)/365)
	// Hour angle: 15° per hour from solar noon.
	h := (hour - 12) * 15 * math.Pi / 180
	sinEl := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(h)
	return math.Asin(clamp(sinEl, -1, 1))
}

// ClearSkyGHI returns the Haurwitz clear-sky global horizontal irradiance
// in W/m² for the given elevation angle (radians). Below the horizon the
// irradiance is zero.
func ClearSkyGHI(elevation float64) float64 {
	s := math.Sin(elevation)
	if s <= 0 {
		return 0
	}
	return SolarConstant * s * math.Exp(-0.057/s)
}

// ClearSkyGHIAt composes elevation and irradiance for Golden, CO.
func ClearSkyGHIAt(month, day int, hour float64) float64 {
	return ClearSkyGHI(SolarElevation(GoldenLatitudeDeg, dayOfYear(month, day), hour))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// validateMonth rejects out-of-range months.
func validateMonth(month int) error {
	if month < 1 || month > 12 {
		return fmt.Errorf("solar: month %d outside 1..12", month)
	}
	return nil
}
