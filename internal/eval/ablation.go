package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/solar"
)

// AblationRow compares REAP restricted to a subset of design points over
// the solar month, quantifying the claim of Section 2 that on/off-only
// power management (a single design point duty-cycled against off) is
// sub-optimal, and measuring how much each additional Pareto point buys.
type AblationRow struct {
	Name string
	// DPIndices are the design points available to the policy.
	DPIndices []int
	// MeanJ is the month's mean objective (α=1).
	MeanJ float64
	// RelativeToFull is MeanJ divided by the full five-point REAP.
	RelativeToFull float64
}

// AblationResult is the design-point-availability ablation.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs REAP over the September trace with progressively richer
// design-point sets.
func Ablation(cfg core.Config) (*AblationResult, error) {
	tr, err := solar.September2015()
	if err != nil {
		return nil, err
	}
	return AblationOn(cfg, tr.Hours)
}

// AblationOn evaluates the ablation on an arbitrary hourly budget trace.
func AblationOn(cfg core.Config, budgets []float64) (*AblationResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cases := []AblationRow{
		{Name: "on/off DP1 only (prior-work baseline)", DPIndices: []int{0}},
		{Name: "on/off DP5 only", DPIndices: []int{len(cfg.DPs) - 1}},
		{Name: "extremes DP1+DP5", DPIndices: []int{0, len(cfg.DPs) - 1}},
		{Name: "odd points DP1+DP3+DP5", DPIndices: []int{0, 2, 4}},
		{Name: "full Pareto set (REAP)", DPIndices: []int{0, 1, 2, 3, 4}},
	}
	res := &AblationResult{}
	var fullJ float64
	for _, c := range cases {
		sub := core.Config{Period: cfg.Period, POff: cfg.POff, Alpha: cfg.Alpha}
		for _, i := range c.DPIndices {
			if i < 0 || i >= len(cfg.DPs) {
				return nil, fmt.Errorf("eval: ablation index %d out of range", i)
			}
			sub.DPs = append(sub.DPs, cfg.DPs[i])
		}
		sim := &device.Simulator{Cfg: sub}
		run, err := sim.Run(device.REAPPolicy{}, budgets)
		if err != nil {
			return nil, err
		}
		c.MeanJ = run.MeanObjective()
		res.Rows = append(res.Rows, c)
		fullJ = c.MeanJ // last case is the full set
	}
	for i := range res.Rows {
		if fullJ > 0 {
			res.Rows[i].RelativeToFull = res.Rows[i].MeanJ / fullJ
		}
	}
	return res, nil
}

// Render prints the ablation grid.
func (r *AblationResult) Render() string {
	t := &table{header: []string{"design point set", "mean J", "vs full REAP"}}
	for _, row := range r.Rows {
		t.add(row.Name, f3(row.MeanJ), f2(row.RelativeToFull))
	}
	return "Ablation: value of the multi-design-point set over the solar month (alpha=1)\n" + t.String()
}
