// Command reap solves one activity period's allocation from the command
// line: the on-device computation of Algorithm 1, exposed for inspection.
//
// Usage:
//
//	reap -budget 5.0 [-alpha 1] [-period 3600] [-poff 5e-5] [-dps file.json]
//	     [-solver simplex|enumerate]
//
// The design points default to the paper's Table 2; -dps accepts a JSON
// array of {"name": ..., "accuracy": ..., "power": ...} objects (power in
// watts). -solver selects a registered optimizer backend by name.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

type jsonDP struct {
	Name     string  `json:"name"`
	Accuracy float64 `json:"accuracy"`
	Power    float64 `json:"power"`
}

func main() {
	log.SetFlags(0)
	budget := flag.Float64("budget", 5.0, "energy budget for the period, joules")
	alpha := flag.Float64("alpha", 1.0, "accuracy emphasis exponent")
	period := flag.Float64("period", reap.DefaultPeriod, "activity period, seconds")
	poff := flag.Float64("poff", reap.DefaultPOff, "off-state power, watts")
	dpsFile := flag.String("dps", "", "JSON file with custom design points")
	solverName := flag.String("solver", reap.DefaultSolver,
		"optimizer backend: "+strings.Join(reap.Solvers(), ", "))
	flag.Parse()

	opts := []reap.Option{
		reap.WithPeriod(*period),
		reap.WithOffPower(*poff),
		reap.WithAlpha(*alpha),
	}
	if *dpsFile != "" {
		data, err := os.ReadFile(*dpsFile)
		if err != nil {
			log.Fatal(err)
		}
		var raw []jsonDP
		if err := json.Unmarshal(data, &raw); err != nil {
			log.Fatalf("parsing %s: %v", *dpsFile, err)
		}
		dps := make([]reap.DesignPoint, len(raw))
		for i, d := range raw {
			dps[i] = reap.DesignPoint{Name: d.Name, Accuracy: d.Accuracy, Power: d.Power}
		}
		opts = append(opts, reap.WithDesignPoints(dps...))
	}

	cfg, err := reap.NewConfig(opts...)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := reap.LookupSolver(*solverName)
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := solver.Solve(context.Background(), cfg, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget      %.3f J (%s)\n", *budget, reap.Classify(cfg, *budget))
	fmt.Printf("solver      %s\n", *solverName)
	fmt.Printf("objective   J(t) = %.4f (alpha %g)\n", alloc.Objective(cfg), cfg.Alpha)
	fmt.Printf("expected accuracy %.2f%%\n", 100*alloc.ExpectedAccuracy(cfg))
	fmt.Printf("active time %.0f s of %.0f (%.1f%%)\n",
		alloc.ActiveTime(), cfg.Period, 100*alloc.ActiveTime()/cfg.Period)
	fmt.Printf("energy used %.3f J\n", alloc.Energy(cfg))
	fmt.Println("schedule:")
	for i, t := range alloc.Active {
		if t > 0 {
			fmt.Printf("  %-6s %7.0f s  (%5.1f%%)  acc %.0f%%  %.2f mW\n",
				cfg.DPs[i].Name, t, 100*t/cfg.Period,
				100*cfg.DPs[i].Accuracy, 1e3*cfg.DPs[i].Power)
		}
	}
	if alloc.Off > 0 {
		fmt.Printf("  %-6s %7.0f s  (%5.1f%%)\n", "off", alloc.Off, 100*alloc.Off/cfg.Period)
	}
	if alloc.Dead > 0 {
		fmt.Printf("  %-6s %7.0f s  (%5.1f%%)  budget below idle floor\n",
			"dead", alloc.Dead, 100*alloc.Dead/cfg.Period)
	}
}
