package eval

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/solar"
)

// PlacementRow is one harvesting-exposure level: how a wearer's habits
// (outdoor worker vs office worker vs cell under a sleeve) scale the
// harvest, and what that does to REAP and the static baselines.
type PlacementRow struct {
	Label       string
	Exposure    float64
	HarvestJ    float64
	REAPMeanAcc float64
	DP1MeanAcc  float64
	DP5MeanAcc  float64
	REAPOverDP1 float64
	REAPOverDP5 float64
}

// PlacementResult is the exposure-sensitivity experiment: the paper's
// single prototype fixes one harvesting scale; this sweep shows REAP's
// advantage across the realistic range of cell placements.
type PlacementResult struct {
	Rows []PlacementRow
}

// Placement sweeps the cell exposure factor over September (α=1).
func Placement(cfg core.Config) (*PlacementResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cases := []struct {
		label    string
		exposure float64
	}{
		{"sleeve-covered (0.4x)", 0.014},
		{"office worker (0.7x)", 0.0245},
		{"baseline (1x)", 0.035},
		{"outdoor worker (1.6x)", 0.056},
		{"panel-on-hat (2.5x)", 0.0875},
	}
	res := &PlacementResult{}
	for _, c := range cases {
		cell := solar.DefaultCell()
		cell.Exposure = c.exposure
		tr, err := solar.MonthlyTrace(9, 2015, cell)
		if err != nil {
			return nil, err
		}
		budgets := solar.GreedyAllocator{}.Budgets(tr.Hours)
		sim := &device.Simulator{Cfg: cfg}
		reap, err := sim.Run(device.REAPPolicy{}, budgets)
		if err != nil {
			return nil, err
		}
		dp1, err := sim.Run(device.StaticPolicy{Index: 0}, budgets)
		if err != nil {
			return nil, err
		}
		dp5, err := sim.Run(device.StaticPolicy{Index: len(cfg.DPs) - 1}, budgets)
		if err != nil {
			return nil, err
		}
		row := PlacementRow{
			Label:       c.label,
			Exposure:    c.exposure,
			HarvestJ:    tr.Total(),
			REAPMeanAcc: reap.MeanExpectedAccuracy(),
			DP1MeanAcc:  dp1.MeanExpectedAccuracy(),
			DP5MeanAcc:  dp5.MeanExpectedAccuracy(),
		}
		if row.DP1MeanAcc > 0 {
			row.REAPOverDP1 = row.REAPMeanAcc / row.DP1MeanAcc
		}
		if row.DP5MeanAcc > 0 {
			row.REAPOverDP5 = row.REAPMeanAcc / row.DP5MeanAcc
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the placement grid.
func (r *PlacementResult) Render() string {
	t := &table{header: []string{
		"placement", "harvest(J)", "REAP E{a}", "DP1 E{a}", "DP5 E{a}", "REAP/DP1", "REAP/DP5",
	}}
	for _, row := range r.Rows {
		t.add(row.Label, f1(row.HarvestJ), f3(row.REAPMeanAcc),
			f3(row.DP1MeanAcc), f3(row.DP5MeanAcc), f2(row.REAPOverDP1), f2(row.REAPOverDP5))
	}
	return "Placement sensitivity: cell exposure vs REAP advantage (September, alpha=1)\n" +
		t.String()
}
