package har

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/synth"
)

// PerUserAccuracy evaluates a trained model separately on each subject's
// share of the given index set, quantifying the paper's observation that
// "recognition accuracy is a strong function of the users". The returned
// map is keyed by user ID; users with no windows in the set are absent.
func PerUserAccuracy(ds *synth.Dataset, m *Model, indices []int) (map[int]float64, error) {
	correct := make(map[int]int)
	total := make(map[int]int)
	for _, i := range indices {
		w := ds.Windows[i]
		pred, err := m.Classify(w)
		if err != nil {
			return nil, err
		}
		total[w.User]++
		if pred == w.Activity {
			correct[w.User]++
		}
	}
	out := make(map[int]float64, len(total))
	for u, n := range total {
		out[u] = float64(correct[u]) / float64(n)
	}
	return out, nil
}

// LOUOResult is the outcome of a leave-one-user-out evaluation: the
// within-corpus split of the paper mixes every subject into training,
// which flatters accuracy; LOUO measures how a design point generalizes
// to a subject it has never seen — the deployment-relevant number.
type LOUOResult struct {
	Spec DesignPointSpec
	// PerUser[u] is the accuracy on user u when trained on everyone else.
	PerUser map[int]float64
	// Mean is the unweighted mean across users.
	Mean float64
	// Min and Max bound the per-user spread.
	Min, Max float64
}

// LeaveOneUserOut trains the spec once per subject, holding that subject
// out entirely, and evaluates on the held-out subject's windows.
func LeaveOneUserOut(ds *synth.Dataset, spec DesignPointSpec) (*LOUOResult, error) {
	if err := spec.Features.Validate(); err != nil {
		return nil, err
	}
	byUser := make(map[int][]int)
	for i, w := range ds.Windows {
		byUser[w.User] = append(byUser[w.User], i)
	}
	if len(byUser) < 2 {
		return nil, fmt.Errorf("har: LOUO needs at least 2 users, corpus has %d", len(byUser))
	}
	var users []int
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)

	res := &LOUOResult{Spec: spec, PerUser: make(map[int]float64), Min: 1, Max: 0}
	var sum float64
	for _, holdOut := range users {
		var trainSamples, testSamples []nn.Sample
		var trainRows [][]float64
		var trainLabels []int
		for u, idx := range byUser {
			for _, i := range idx {
				x, err := spec.Features.Extract(ds.Windows[i])
				if err != nil {
					return nil, err
				}
				if u == holdOut {
					testSamples = append(testSamples, nn.Sample{X: x, Label: int(ds.Windows[i].Activity)})
				} else {
					trainRows = append(trainRows, x)
					trainLabels = append(trainLabels, int(ds.Windows[i].Activity))
				}
			}
		}
		norm := FitNormalizer(trainRows)
		for i := range trainRows {
			trainSamples = append(trainSamples, nn.Sample{
				X: norm.Apply(trainRows[i]), Label: trainLabels[i],
			})
		}
		for i := range testSamples {
			testSamples[i].X = norm.Apply(testSamples[i].X)
		}

		cfg := TrainSpec()
		net, err := nn.New(spec.NNSizes(), nn.ReLU, nn.Softmax, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		if _, err := nn.Train(net, trainSamples, nil, cfg); err != nil {
			return nil, err
		}
		acc := nn.Accuracy(net, testSamples)
		res.PerUser[holdOut] = acc
		sum += acc
		if acc < res.Min {
			res.Min = acc
		}
		if acc > res.Max {
			res.Max = acc
		}
	}
	res.Mean = sum / float64(len(users))
	return res, nil
}
