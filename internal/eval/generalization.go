package eval

import (
	"fmt"
	"sort"

	"repro/internal/har"
	"repro/internal/synth"
)

// GeneralizationResult quantifies the paper's remark that "recognition
// accuracy is a strong function of the users": the per-user accuracy
// spread under the paper's within-corpus split, and the leave-one-user-out
// accuracy, which measures deployment to an unseen subject.
type GeneralizationResult struct {
	Spec har.DesignPointSpec
	// WithinSplit is the paper-style 60/20/20 test accuracy.
	WithinSplit float64
	// PerUser is the within-split accuracy per subject, keyed by ID.
	PerUser map[int]float64
	// PerUserMin and PerUserMax bound the spread.
	PerUserMin, PerUserMax float64
	// LOUO is the leave-one-user-out result.
	LOUO *har.LOUOResult
}

// Generalization evaluates a design point both ways on the given corpus.
func Generalization(ds *synth.Dataset, spec har.DesignPointSpec) (*GeneralizationResult, error) {
	model, err := har.TrainModel(ds, spec)
	if err != nil {
		return nil, err
	}
	perUser, err := har.PerUserAccuracy(ds, model, ds.Test)
	if err != nil {
		return nil, err
	}
	louo, err := har.LeaveOneUserOut(ds, spec)
	if err != nil {
		return nil, err
	}
	res := &GeneralizationResult{
		Spec:        spec,
		WithinSplit: model.TestAcc,
		PerUser:     perUser,
		PerUserMin:  1,
		LOUO:        louo,
	}
	for _, a := range perUser {
		if a < res.PerUserMin {
			res.PerUserMin = a
		}
		if a > res.PerUserMax {
			res.PerUserMax = a
		}
	}
	return res, nil
}

// Render prints the generalization report.
func (r *GeneralizationResult) Render() string {
	t := &table{header: []string{"user", "within-split acc%", "LOUO acc%"}}
	var users []int
	for u := range r.PerUser {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		louo := "-"
		if v, ok := r.LOUO.PerUser[u]; ok {
			louo = f1(100 * v)
		}
		t.add(fmt.Sprintf("u%d", u), f1(100*r.PerUser[u]), louo)
	}
	t.add("mean", f1(100*r.WithinSplit), f1(100*r.LOUO.Mean))
	return fmt.Sprintf(
		"Generalization (%s): accuracy is a strong function of the users (paper §1)\n",
		r.Spec.Name) + t.String()
}
