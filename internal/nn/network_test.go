package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New([]int{4}, ReLU, Softmax, rng); err == nil {
		t.Fatal("single-size spec accepted")
	}
	if _, err := New([]int{4, 0, 7}, ReLU, Softmax, rng); err == nil {
		t.Fatal("zero layer size accepted")
	}
	net, err := New([]int{4, 12, 7}, ReLU, Softmax, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.InputSize() != 4 || net.OutputSize() != 7 {
		t.Fatalf("sizes %d/%d", net.InputSize(), net.OutputSize())
	}
	sizes := net.Sizes()
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 12 || sizes[2] != 7 {
		t.Fatalf("Sizes() = %v", sizes)
	}
}

func TestPaperStructures(t *testing.T) {
	// The paper's classifier structures: 4×12×7, 4×8×7 and 4×7.
	rng := rand.New(rand.NewSource(2))
	specs := [][]int{{4, 12, 7}, {4, 8, 7}, {4, 7}}
	wantMACs := []int{4*12 + 12*7, 4*8 + 8*7, 4 * 7}
	for i, spec := range specs {
		net, err := New(spec, ReLU, Softmax, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := net.MACs(); got != wantMACs[i] {
			t.Errorf("spec %v: MACs = %d, want %d", spec, got, wantMACs[i])
		}
		wantParams := wantMACs[i]
		for _, l := range net.Layers {
			wantParams += l.Out
		}
		_ = wantParams
		if net.NumParams() <= net.MACs() {
			t.Errorf("spec %v: params %d should exceed MACs %d (biases)", spec, net.NumParams(), net.MACs())
		}
	}
}

func TestForwardShapeCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, _ := New([]int{4, 7}, ReLU, Softmax, rng)
	if _, err := net.Forward([]float64{1, 2}); err == nil {
		t.Fatal("wrong input width accepted")
	}
	if _, err := net.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("Predict accepted wrong width")
	}
}

func TestSoftmaxOutputIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, _ := New([]int{5, 9, 7}, Tanh, Softmax, rng)
	x := []float64{0.3, -1.2, 4.0, 0.0, 2.2}
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("softmax output %v outside [0,1]", v)
		}
		sum += v
	}
	if !approx(sum, 1, 1e-9) {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	z := applyActivation(Softmax, []float64{1000, 1000, 1000})
	for _, v := range z {
		if !approx(v, 1.0/3, 1e-9) {
			t.Fatalf("softmax of equal large logits = %v", z)
		}
	}
	z = applyActivation(Softmax, []float64{-1000, 0})
	if !approx(z[1], 1, 1e-9) {
		t.Fatalf("softmax with extreme gap = %v", z)
	}
}

func TestActivations(t *testing.T) {
	if got := applyActivation(ReLU, []float64{-2, 0, 3})[0]; got != 0 {
		t.Error("ReLU(-2) != 0")
	}
	if got := applyActivation(Sigmoid, []float64{0})[0]; !approx(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := applyActivation(Tanh, []float64{0})[0]; got != 0 {
		t.Errorf("Tanh(0) = %v", got)
	}
	if got := applyActivation(Linear, []float64{3.5})[0]; got != 3.5 {
		t.Errorf("Linear(3.5) = %v", got)
	}
	for _, a := range []Activation{Linear, ReLU, Sigmoid, Tanh, Softmax, Activation(99)} {
		if a.String() == "" {
			t.Errorf("empty name for %d", int(a))
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New([]int{4, 8, 7}, ReLU, Softmax, rand.New(rand.NewSource(42)))
	b, _ := New([]int{4, 8, 7}, ReLU, Softmax, rand.New(rand.NewSource(42)))
	for li := range a.Layers {
		for j := range a.Layers[li].W {
			if a.Layers[li].W[j] != b.Layers[li].W[j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := New([]int{3, 5, 2}, ReLU, Softmax, rng)
	b := a.Clone()
	b.Layers[0].W[0] += 1
	if a.Layers[0].W[0] == b.Layers[0].W[0] {
		t.Fatal("Clone aliases weights")
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check of backprop through a 2-layer net.
	rng := rand.New(rand.NewSource(6))
	net, _ := New([]int{3, 4, 3}, Tanh, Softmax, rng)
	s := Sample{X: []float64{0.5, -0.3, 0.8}, Label: 2}

	grad := newGradBuffer(net)
	backprop(net, s, grad)

	loss := func() float64 {
		out, _ := net.Forward(s.X)
		return -math.Log(out[s.Label])
	}
	const h = 1e-6
	for li, l := range net.Layers {
		for j := range l.W {
			orig := l.W[j]
			l.W[j] = orig + h
			up := loss()
			l.W[j] = orig - h
			down := loss()
			l.W[j] = orig
			numeric := (up - down) / (2 * h)
			if !approx(grad.w[li][j], numeric, 1e-4*(1+math.Abs(numeric))) {
				t.Fatalf("layer %d W[%d]: backprop %v vs numeric %v", li, j, grad.w[li][j], numeric)
			}
		}
		for j := range l.B {
			orig := l.B[j]
			l.B[j] = orig + h
			up := loss()
			l.B[j] = orig - h
			down := loss()
			l.B[j] = orig
			numeric := (up - down) / (2 * h)
			if !approx(grad.b[li][j], numeric, 1e-4*(1+math.Abs(numeric))) {
				t.Fatalf("layer %d B[%d]: backprop %v vs numeric %v", li, j, grad.b[li][j], numeric)
			}
		}
	}
}

func TestGradientCheckReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, _ := New([]int{2, 6, 2}, ReLU, Softmax, rng)
	s := Sample{X: []float64{1.3, -0.7}, Label: 0}
	grad := newGradBuffer(net)
	backprop(net, s, grad)
	loss := func() float64 {
		out, _ := net.Forward(s.X)
		return -math.Log(out[s.Label])
	}
	const h = 1e-6
	for li, l := range net.Layers {
		for j := range l.W {
			orig := l.W[j]
			l.W[j] = orig + h
			up := loss()
			l.W[j] = orig - h
			down := loss()
			l.W[j] = orig
			numeric := (up - down) / (2 * h)
			// ReLU kinks can make individual comparisons off; allow a
			// looser tolerance and skip near-kink points.
			if math.Abs(numeric-grad.w[li][j]) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d W[%d]: backprop %v vs numeric %v", li, j, grad.w[li][j], numeric)
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, _ := New([]int{4, 12, 7}, ReLU, Softmax, rng)
	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	a, _ := net.Forward(x)
	b, _ := back.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"layers":[]}`,
		`{"layers":[{"in":0,"out":2,"act":0,"w":[],"b":[]}]}`,
		`{"layers":[{"in":2,"out":2,"act":0,"w":[1,2,3],"b":[0,0]}]}`,
		`{"layers":[{"in":2,"out":2,"act":0,"w":[1,2,3,4],"b":[0]}]}`,
		`{"layers":[{"in":2,"out":2,"act":0,"w":[1,2,3,4],"b":[0,0]},{"in":3,"out":1,"act":4,"w":[1,2,3],"b":[0]}]}`,
		`not json`,
	}
	for i, c := range cases {
		var net Network
		if err := json.Unmarshal([]byte(c), &net); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}
