package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fpx"
	"repro/internal/solar"
)

// Figure7Ratio summarizes REAP's improvement over one baseline design
// point at one α: the mean and range of per-day performance ratios across
// the month (the paper's error bars are this range).
type Figure7Ratio struct {
	Baseline string
	Alpha    float64
	Mean     float64
	Min      float64
	Max      float64
}

// Figure7Result is the month-long solar case study of Section 5.4.
type Figure7Result struct {
	// Month/Year of the synthetic trace.
	Month, Year int
	// Alphas swept (the paper uses 0.5, 1, 2, 4, 8).
	Alphas []float64
	// Ratios holds one entry per (baseline, alpha).
	Ratios []Figure7Ratio
	// HarvestTotalJ is the month's harvested energy.
	HarvestTotalJ float64
}

// Figure7Baselines are the design points the paper compares against: the
// highest-performance (DP1), best-trade-off (DP3) and lowest-energy (DP5).
var Figure7Baselines = map[string]int{"DP1": 0, "DP3": 2, "DP5": 4}

// Figure7 runs REAP and the baselines over the September 2015 synthetic
// solar trace for the standard α sweep.
func Figure7(cfg core.Config) (*Figure7Result, error) {
	tr, err := solar.September2015()
	if err != nil {
		return nil, err
	}
	return Figure7On(cfg, tr, []float64{0.5, 1, 2, 4, 8})
}

// Figure7On evaluates an arbitrary trace and α set.
func Figure7On(cfg core.Config, tr *solar.Trace, alphas []float64) (*Figure7Result, error) {
	budgets := solar.GreedyAllocator{}.Budgets(tr.Hours)
	res := &Figure7Result{Month: tr.Month, Year: tr.Year, Alphas: alphas, HarvestTotalJ: tr.Total()}
	days := len(tr.Hours) / 24
	for _, alpha := range alphas {
		c := cfg
		c.Alpha = alpha
		sim := &device.Simulator{Cfg: c}
		reap, err := sim.Run(device.REAPPolicy{}, budgets)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"DP1", "DP3", "DP5"} {
			idx := Figure7Baselines[name]
			static, err := sim.Run(device.StaticPolicy{Index: idx}, budgets)
			if err != nil {
				return nil, err
			}
			ratio := Figure7Ratio{Baseline: name, Alpha: alpha, Min: 1e18, Max: -1e18}
			var sum float64
			n := 0
			for d := 0; d < days; d++ {
				var jr, jd float64
				for h := d * 24; h < (d+1)*24; h++ {
					jr += reap.Hours[h].Objective
					jd += static.Hours[h].Objective
				}
				if jd <= 1e-12 {
					continue // fully dark day: ratio undefined
				}
				r := jr / jd
				sum += r
				n++
				if r < ratio.Min {
					ratio.Min = r
				}
				if r > ratio.Max {
					ratio.Max = r
				}
			}
			if n > 0 {
				ratio.Mean = sum / float64(n)
			} else {
				ratio.Min, ratio.Max = 0, 0
			}
			res.Ratios = append(res.Ratios, ratio)
		}
	}
	return res, nil
}

// Ratio returns the summary for a baseline and α.
func (r *Figure7Result) Ratio(baseline string, alpha float64) (Figure7Ratio, bool) {
	for _, x := range r.Ratios {
		if x.Baseline == baseline && fpx.Eq(x.Alpha, alpha) {
			return x, true
		}
	}
	return Figure7Ratio{}, false
}

// Render prints the mean/min/max improvement grid.
func (r *Figure7Result) Render() string {
	t := &table{header: []string{"alpha", "vs", "mean", "min", "max"}}
	for _, x := range r.Ratios {
		t.add(fmt.Sprintf("%g", x.Alpha), x.Baseline, f2(x.Mean), f2(x.Min), f2(x.Max))
	}
	return fmt.Sprintf(
		"Figure 7: REAP performance normalized to DP1/DP3/DP5, synthetic %d-%02d (harvest %.0f J)\n",
		r.Year, r.Month, r.HarvestTotalJ) + t.String()
}
