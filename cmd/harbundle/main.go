// Command harbundle manages deployable design-point bundles: it trains
// the five Pareto design points on the synthetic corpus and writes them to
// a JSON bundle file (-train), or loads a bundle and classifies a live
// synthetic activity stream with it (-classify), printing per-design-point
// accuracy. The bundle is what a real deployment would flash.
//
// Usage:
//
//	harbundle -train bundle.json [-users 14] [-windows 3553] [-seed 2019]
//	harbundle -classify bundle.json [-stream 200] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/har"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	trainPath := flag.String("train", "", "train the paper's five design points and write this bundle")
	classifyPath := flag.String("classify", "", "load this bundle and classify a live stream")
	users := flag.Int("users", 14, "corpus users (train)")
	windows := flag.Int("windows", 3553, "corpus windows (train)")
	seed := flag.Int64("seed", 2019, "corpus / stream seed")
	stream := flag.Int("stream", 200, "windows to classify per design point (classify)")
	flag.Parse()

	switch {
	case *trainPath != "":
		train(*trainPath, *users, *windows, *seed)
	case *classifyPath != "":
		classify(*classifyPath, *stream, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func train(path string, users, windows int, seed int64) {
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: users, TotalWindows: windows, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		log.Fatal(err)
	}
	models := make([]*har.Model, len(points))
	for i, p := range points {
		models[i] = p.Model
		fmt.Printf("trained %-4s test accuracy %.1f%%  power %.2f mW\n",
			p.Spec.Name, 100*p.Accuracy, 1e3*p.Power())
	}
	data, err := har.SaveModels(models)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, %d design points)\n", path, len(data), len(models))
}

func classify(path string, stream int, seed int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	models, err := har.LoadModels(data)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	// A fresh user the bundle has never seen.
	user := synth.NewUserProfile(999, seed)
	fmt.Printf("classifying %d live windows per design point (unseen user):\n", stream)
	for _, m := range models {
		correct := 0
		for k := 0; k < stream; k++ {
			truth := synth.Activities()[rng.Intn(synth.NumActivities)]
			w := synth.Generate(user, truth, rng)
			pred, err := m.Classify(w)
			if err != nil {
				log.Fatal(err)
			}
			if pred == truth {
				correct++
			}
		}
		fmt.Printf("  %-4s %d/%d correct (%.1f%%)  [trained test acc %.1f%%]\n",
			m.Spec.Name, correct, stream, 100*float64(correct)/float64(stream), 100*m.TestAcc)
	}
}
