package journal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
)

// TestCursorTailsLiveAppends reads events back as they are appended,
// across a compaction-driven rotation, verifying payloads and sequence
// numbers — the primary-side catch-up path of journal shipping.
func TestCursorTailsLiveAppends(t *testing.T) {
	st, _ := openStarted(t, t.TempDir(), Options{RetainSegments: 4})
	defer st.Close()

	cur, err := st.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	defer cur.Close()

	if _, _, err := cur.Next(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Next on empty journal: err = %v, want ErrNotReady", err)
	}

	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("event-%d", i))
		want = append(want, p)
		if _, err := st.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if i == 25 {
			// Rotate mid-stream; the cursor must hop segments.
			if err := st.Compact([]byte("snap-25")); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}
	for i, w := range want {
		p, seq, err := cur.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Next %d: seq = %d, want %d", i, seq, i+1)
		}
		if !bytes.Equal(p, w) {
			t.Fatalf("Next %d: payload %q, want %q", i, p, w)
		}
	}
	if _, _, err := cur.Next(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Next past tail: err = %v, want ErrNotReady", err)
	}
	if cur.Seq() != st.Seq() {
		t.Fatalf("cursor caught up at %d, store at %d", cur.Seq(), st.Seq())
	}
}

// TestCursorMidSegmentStart opens a cursor at a position inside a
// segment and checks the header-hop skip lands on the right event.
func TestCursorMidSegmentStart(t *testing.T) {
	st, _ := openStarted(t, t.TempDir(), Options{})
	defer st.Close()
	for i := 0; i < 20; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("e%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	cur, err := st.OpenCursor(13)
	if err != nil {
		t.Fatalf("OpenCursor(13): %v", err)
	}
	defer cur.Close()
	p, seq, err := cur.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if seq != 14 || string(p) != "e13" {
		t.Fatalf("Next = (%q, %d), want (e13, 14)", p, seq)
	}
}

// TestRetentionBoundsCursorAndSurvivesReboot verifies that
// RetainSegments keeps rotated segments readable (and prunes beyond
// the cap), that OldestRetained tracks the prune point, and that
// retention holds across a store reboot.
func TestRetentionBoundsCursorAndSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{RetainSegments: 2})
	seqAt := make(map[int]uint64) // compaction round -> seq at rotation
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			if _, err := st.Append([]byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := st.Compact([]byte(fmt.Sprintf("snap-%d", round))); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		seqAt[round] = st.Seq()
	}
	// Five rotations, keep 2: history before seq 30 is pruned.
	if got := st.OldestRetained(); got != seqAt[2] {
		t.Fatalf("OldestRetained = %d, want %d", got, seqAt[2])
	}
	if _, err := st.OpenCursor(seqAt[2] - 1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("cursor before retention: err = %v, want ErrCompacted", err)
	}
	if _, err := st.OpenCursor(st.Seq() + 1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("cursor beyond history: err = %v, want ErrCompacted", err)
	}
	cur, err := st.OpenCursor(seqAt[2])
	if err != nil {
		t.Fatalf("OpenCursor(oldest): %v", err)
	}
	n := 0
	for {
		if _, _, err := cur.Next(); err != nil {
			if !errors.Is(err, ErrNotReady) {
				t.Fatalf("Next: %v", err)
			}
			break
		}
		n++
	}
	cur.Close()
	if n != 20 {
		t.Fatalf("read %d retained events, want 20", n)
	}
	st.Close()

	// Reboot: the retained segments must still be there and readable.
	st2, replayed := openStarted(t, dir, Options{RetainSegments: 2})
	defer st2.Close()
	if len(replayed) != 0 {
		t.Fatalf("replayed %d records, want 0 (snapshot covers all)", len(replayed))
	}
	if got := st2.OldestRetained(); got != seqAt[2] {
		t.Fatalf("OldestRetained after reboot = %d, want %d", got, seqAt[2])
	}
	cur2, err := st2.OpenCursor(seqAt[2])
	if err != nil {
		t.Fatalf("OpenCursor after reboot: %v", err)
	}
	defer cur2.Close()
	p, seq, err := cur2.Next()
	if err != nil {
		t.Fatalf("Next after reboot: %v", err)
	}
	if seq != seqAt[2]+1 || string(p) != "r3-0" {
		t.Fatalf("Next after reboot = (%q, %d), want (r3-0, %d)", p, seq, seqAt[2]+1)
	}
}

// TestResetReRootsHistory installs a foreign snapshot at an arbitrary
// sequence number and checks the store continues from there, durably.
func TestResetReRootsHistory(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{RetainSegments: 2})
	for i := 0; i < 30; i++ {
		if _, err := st.Append([]byte("local")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := st.Reset([]byte("primary-state"), 1000); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if st.Seq() != 1000 {
		t.Fatalf("Seq after Reset = %d, want 1000", st.Seq())
	}
	if got := st.OldestRetained(); got != 1000 {
		t.Fatalf("OldestRetained after Reset = %d, want 1000", got)
	}
	seq, err := st.Append([]byte("replicated"))
	if err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
	if seq != 1001 {
		t.Fatalf("Append after Reset: seq = %d, want 1001", seq)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Reset: %v", err)
	}
	snap, snapSeq := st2.Snapshot()
	if string(snap) != "primary-state" || snapSeq != 1000 {
		t.Fatalf("Snapshot after Reset = (%q, %d), want (primary-state, 1000)", snap, snapSeq)
	}
	var replayed [][]byte
	if err := st2.Start(func(p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Start after Reset: %v", err)
	}
	defer st2.Close()
	if len(replayed) != 1 || string(replayed[0]) != "replicated" {
		t.Fatalf("replayed %q, want [replicated]", replayed)
	}
	if st2.Seq() != 1001 {
		t.Fatalf("Seq after reboot = %d, want 1001", st2.Seq())
	}
}

// TestDiskFullClassification checks that ENOSPC and short writes
// surface as ErrDiskFull while other failures stay opaque.
func TestDiskFullClassification(t *testing.T) {
	st, _ := openStarted(t, t.TempDir(), Options{})
	defer st.Close()
	if _, err := st.Append([]byte("ok")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	st.FailAppends(syscall.ENOSPC)
	if _, err := st.Append([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("ENOSPC append: err = %v, want ErrDiskFull", err)
	}
	st.FailAppends(io.ErrShortWrite)
	if _, err := st.Append([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("short-write append: err = %v, want ErrDiskFull", err)
	}
	st.FailAppends(errors.New("cable on fire"))
	if _, err := st.Append([]byte("x")); errors.Is(err, ErrDiskFull) {
		t.Fatalf("unrelated failure misclassified as ErrDiskFull")
	}

	// Failed appends consume no sequence numbers; recovery resumes.
	st.FailAppends(nil)
	seq, err := st.Append([]byte("ok2"))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if seq != 2 {
		t.Fatalf("Append after recovery: seq = %d, want 2", seq)
	}
}

// TestFrameRoundTrip pins the exported stream framing to the segment
// framing: EncodeFrame bytes read back via ReadFrame, and a torn
// stream surfaces ErrTornTail.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(EncodeFrame([]byte("hello")))
	buf.Write(EncodeFrame(nil))
	full := EncodeFrame([]byte("torn away"))
	buf.Write(full[:len(full)-3])

	r := bufio.NewReader(&buf)
	p, err := ReadFrame(r)
	if err != nil || string(p) != "hello" {
		t.Fatalf("ReadFrame 1 = (%q, %v)", p, err)
	}
	p, err = ReadFrame(r)
	if err != nil || len(p) != 0 {
		t.Fatalf("ReadFrame 2 = (%q, %v)", p, err)
	}
	if _, err := ReadFrame(r); !errors.Is(err, ErrTornTail) {
		t.Fatalf("ReadFrame torn: err = %v, want ErrTornTail", err)
	}
}
