package har

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/synth"
)

// Model is a trained design point: the spec, its fitted normalizer and
// classifier, and the measured accuracies. Quantized specs additionally
// carry the int8 network, which then serves all inference.
type Model struct {
	Spec       DesignPointSpec
	Normalizer *Normalizer
	Net        *nn.Network
	QNet       *nn.QuantizedNetwork
	ValAcc     float64
	TestAcc    float64
}

// Classify runs the full on-device pipeline (feature extraction,
// normalization, inference) on one window and returns the predicted
// activity.
func (m *Model) Classify(w synth.Window) (synth.Activity, error) {
	x, err := m.Spec.Features.Extract(w)
	if err != nil {
		return 0, err
	}
	input := m.Normalizer.Apply(x)
	var pred int
	if m.QNet != nil {
		pred, err = m.QNet.Predict(input)
	} else {
		pred, err = m.Net.Predict(input)
	}
	if err != nil {
		return 0, err
	}
	return synth.Activity(pred), nil
}

// TrainModel trains the classifier of one design point on the corpus's
// 60/20/20 split and reports validation and test accuracy.
func TrainModel(ds *synth.Dataset, spec DesignPointSpec) (*Model, error) {
	if err := spec.Features.Validate(); err != nil {
		return nil, err
	}
	features := func(indices []int) ([][]float64, []int, error) {
		rows := make([][]float64, 0, len(indices))
		labels := make([]int, 0, len(indices))
		for _, i := range indices {
			x, err := spec.Features.Extract(ds.Windows[i])
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, x)
			labels = append(labels, int(ds.Windows[i].Activity))
		}
		return rows, labels, nil
	}

	trainX, trainY, err := features(ds.Train)
	if err != nil {
		return nil, err
	}
	norm := FitNormalizer(trainX)
	toSamples := func(rows [][]float64, labels []int) []nn.Sample {
		samples := make([]nn.Sample, len(rows))
		for i := range rows {
			samples[i] = nn.Sample{X: norm.Apply(rows[i]), Label: labels[i]}
		}
		return samples
	}
	trainSet := toSamples(trainX, trainY)

	valX, valY, err := features(ds.Val)
	if err != nil {
		return nil, err
	}
	valSet := toSamples(valX, valY)

	cfg := TrainSpec()
	net, err := nn.New(spec.NNSizes(), nn.ReLU, nn.Softmax, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("har: building %s classifier: %w", spec.Name, err)
	}
	res, err := nn.Train(net, trainSet, valSet, cfg)
	if err != nil {
		return nil, fmt.Errorf("har: training %s: %w", spec.Name, err)
	}

	testX, testY, err := features(ds.Test)
	if err != nil {
		return nil, err
	}
	testSet := toSamples(testX, testY)

	m := &Model{
		Spec:       spec,
		Normalizer: norm,
		Net:        net,
		ValAcc:     res.BestValAcc,
		TestAcc:    nn.Accuracy(net, testSet),
	}
	if spec.Quantized {
		q, err := nn.Quantize(net)
		if err != nil {
			return nil, fmt.Errorf("har: quantizing %s: %w", spec.Name, err)
		}
		m.QNet = q
		m.TestAcc = nn.QuantizedAccuracy(q, testSet)
	}
	return m, nil
}
