package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fpx"
)

// AlphaGridCell is J*(budget, α) with the winning static design point.
type AlphaGridCell struct {
	Alpha      float64
	BudgetJ    float64
	REAPJ      float64
	BestStatic string
	BestRatio  float64 // best static J / REAP J
}

// AlphaGridResult maps the α-budget plane of Section 5.3: at every point
// REAP dominates, and the identity of the best static design point shifts
// from the cheap end (low α, low budget) to DP1 (high α, high budget).
type AlphaGridResult struct {
	Alphas  []float64
	Budgets []float64
	Cells   []AlphaGridCell
}

// AlphaGrid evaluates the standard α sweep against representative budgets.
func AlphaGrid(cfg core.Config) (*AlphaGridResult, error) {
	res := &AlphaGridResult{
		Alphas:  []float64{0.5, 1, 2, 4, 8},
		Budgets: []float64{2, 4, 6, 8, 9.9},
	}
	for _, alpha := range res.Alphas {
		c := cfg
		c.Alpha = alpha
		if err := c.Validate(); err != nil {
			return nil, err
		}
		for _, budget := range res.Budgets {
			alloc, err := core.Solve(c, budget)
			if err != nil {
				return nil, err
			}
			cell := AlphaGridCell{Alpha: alpha, BudgetJ: budget, REAPJ: alloc.Objective(c)}
			for i := range c.DPs {
				j := core.StaticObjective(c, i, budget)
				if cell.REAPJ > 0 && j/cell.REAPJ > cell.BestRatio {
					cell.BestRatio = j / cell.REAPJ
					cell.BestStatic = c.DPs[i].Name
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Cell returns the grid cell for (alpha, budget).
func (r *AlphaGridResult) Cell(alpha, budget float64) (AlphaGridCell, bool) {
	for _, c := range r.Cells {
		if fpx.Eq(c.Alpha, alpha) && fpx.Eq(c.BudgetJ, budget) {
			return c, true
		}
	}
	return AlphaGridCell{}, false
}

// Render prints the grid: per cell the best static point and how close it
// gets to REAP.
func (r *AlphaGridResult) Render() string {
	t := &table{header: []string{"alpha\\budget"}}
	for _, b := range r.Budgets {
		t.header = append(t.header, fmt.Sprintf("%.1fJ", b))
	}
	for _, alpha := range r.Alphas {
		row := []string{fmt.Sprintf("%g", alpha)}
		for _, b := range r.Budgets {
			c, _ := r.Cell(alpha, b)
			row = append(row, fmt.Sprintf("%s %.2f", c.BestStatic, c.BestRatio))
		}
		t.add(row...)
	}
	return "Alpha-budget grid: best static design point and its J relative to REAP\n" + t.String()
}
