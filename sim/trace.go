package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// StepRecord is one device's outcome for one activity period — one line
// of the trace. All energies are joules, all times seconds.
type StepRecord struct {
	// Step is the hour index from scenario start; Device the fleet index.
	Step, Device int
	// Sky is the weather state of the hour (shared across the fleet).
	Sky string
	// HarvestJ is the energy actually harvested; BudgetJ what the
	// controller was told (they differ under forecast-driven budgets);
	// SolveBudgetJ the budget the LP actually saw (BudgetJ plus the
	// controller's battery contribution and accounting carry) — the
	// reference point for the cache's quantization bound.
	HarvestJ, BudgetJ, SolveBudgetJ float64
	// Active, OffS, DeadS are the planned allocation: seconds per design
	// point, off time, and unpowered time.
	Active      []float64
	OffS, DeadS float64
	// PlannedJ is the allocation's energy; ConsumedJ what execution
	// actually drew; BatteryJ the controller's battery after the step.
	PlannedJ, ConsumedJ, BatteryJ float64
	// Intensity is the hour's mean activity intensity (0 under
	// FlatConsumption); Fault names the injected fault episode ("none").
	Intensity float64
	Fault     string
	// Accuracy is the plan's expected recognition accuracy; Utility is
	// accuracy degraded by the fault episode's effect.
	Accuracy, Utility float64
}

// Trace is the full per-step record of one simulation run, in
// deterministic step-major, device-minor order.
type Trace struct {
	Scenario string
	Seed     int64
	Devices  int
	Steps    int
	Solver   string
	Cached   bool
	Records  []StepRecord
}

// Fixed-point trace formatting. Energies and times get microjoule /
// millisecond precision: fine enough that any behavioral change shows,
// coarse enough that a last-bit library wobble between Go releases
// cannot flip a digit (values would have to sit within 5·10⁻⁷ of a
// rounding boundary). Byte-identity between two runs of the same binary
// holds exactly regardless.
func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteText encodes the trace in its canonical text form: a header, one
// line per (step, device), and an end marker. The encoding is the
// golden-trace unit — byte-identical for identical runs.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# reapsim trace v1\n")
	cached := 0
	if t.Cached {
		cached = 1
	}
	fmt.Fprintf(bw, "# scenario=%s seed=%d devices=%d steps=%d solver=%s cached=%d\n",
		t.Scenario, t.Seed, t.Devices, t.Steps, t.Solver, cached)
	var act strings.Builder
	for i := range t.Records {
		r := &t.Records[i]
		act.Reset()
		for j, a := range r.Active {
			if j > 0 {
				act.WriteByte(',')
			}
			act.WriteString(f3(a))
		}
		fmt.Fprintf(bw, "s=%d d=%d sky=%s h=%s b=%s lp=%s act=%s off=%s dead=%s plan=%s used=%s batt=%s int=%s fault=%s acc=%s util=%s\n",
			r.Step, r.Device, r.Sky, f6(r.HarvestJ), f6(r.BudgetJ), f6(r.SolveBudgetJ), act.String(),
			f3(r.OffS), f3(r.DeadS), f6(r.PlannedJ), f6(r.ConsumedJ), f6(r.BatteryJ),
			f4(r.Intensity), r.Fault, f6(r.Accuracy), f6(r.Utility))
	}
	fmt.Fprintf(bw, "# end records=%d\n", len(t.Records))
	return bw.Flush()
}

// Bytes returns the canonical text encoding.
func (t *Trace) Bytes() []byte {
	var buf bytes.Buffer
	// bytes.Buffer never fails to write.
	_ = t.WriteText(&buf)
	return buf.Bytes()
}

// At returns the record for (step, device), exploiting the canonical
// ordering.
func (t *Trace) At(step, device int) *StepRecord {
	return &t.Records[step*t.Devices+device]
}
