package nn

import (
	"encoding/json"
	"fmt"
)

// jsonNetwork is the serialized form of a Network.
type jsonNetwork struct {
	Layers []jsonLayer `json:"layers"`
}

type jsonLayer struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	Act int       `json:"act"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MarshalJSON serializes the network, weights included, so a trained
// classifier can be stored with its design point.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := jsonNetwork{}
	for _, l := range n.Layers {
		out.Layers = append(out.Layers, jsonLayer{
			In: l.In, Out: l.Out, Act: int(l.Act), W: l.W, B: l.B,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a network serialized with MarshalJSON, validating
// layer shapes.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in jsonNetwork
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Layers) == 0 {
		return fmt.Errorf("nn: serialized network has no layers")
	}
	var layers []*Layer
	for i, jl := range in.Layers {
		if jl.In <= 0 || jl.Out <= 0 {
			return fmt.Errorf("%w: layer %d has size %dx%d", ErrShape, i, jl.In, jl.Out)
		}
		if len(jl.W) != jl.In*jl.Out || len(jl.B) != jl.Out {
			return fmt.Errorf("%w: layer %d weight/bias lengths %d/%d do not match %dx%d",
				ErrShape, i, len(jl.W), len(jl.B), jl.In, jl.Out)
		}
		if i > 0 && layers[i-1].Out != jl.In {
			return fmt.Errorf("%w: layer %d input %d does not match previous output %d",
				ErrShape, i, jl.In, layers[i-1].Out)
		}
		layers = append(layers, &Layer{
			In: jl.In, Out: jl.Out, Act: Activation(jl.Act),
			W: append([]float64(nil), jl.W...),
			B: append([]float64(nil), jl.B...),
		})
	}
	n.Layers = layers
	return nil
}
