package dsp

import "math"

// ResampleLinear resamples x to exactly n points using linear
// interpolation. It is used to reduce the 160-sample stretch window to the
// 16 samples fed to the FFT feature.
func ResampleLinear(x []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if len(x) == 0 {
		return out
	}
	if len(x) == 1 || n == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	scale := float64(len(x)-1) / float64(n-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(math.Floor(pos))
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}

// Decimate keeps every k-th sample of x starting from the first. A factor
// of 1 (or less) returns a copy.
func Decimate(x []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, 0, (len(x)+k-1)/k)
	for i := 0; i < len(x); i += k {
		out = append(out, x[i])
	}
	return out
}

// Truncate keeps the leading fraction of the window, modelling the
// "sensing period" knob of Figure 2: a sensor switched off after 50% of
// the activity window only contributes the first half of its samples.
// Fractions outside (0,1] are clamped.
func Truncate(x []float64, fraction float64) []float64 {
	if fraction >= 1 {
		return append([]float64(nil), x...)
	}
	if fraction <= 0 {
		return nil
	}
	n := int(math.Round(float64(len(x)) * fraction))
	if n > len(x) {
		n = len(x)
	}
	return append([]float64(nil), x[:n]...)
}

// MovingAverage smooths x with a centered window of the given odd width;
// an even width is rounded up. Width ≤ 1 returns a copy.
func MovingAverage(x []float64, width int) []float64 {
	if width <= 1 || len(x) == 0 {
		return append([]float64(nil), x...)
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(x))
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// Magnitude returns the per-sample Euclidean norm across axes, the
// orientation-independent accelerometer magnitude signal.
func Magnitude(axes ...[]float64) []float64 {
	if len(axes) == 0 {
		return nil
	}
	n := len(axes[0])
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for _, axis := range axes {
			if i < len(axis) {
				s += axis[i] * axis[i]
			}
		}
		out[i] = math.Sqrt(s)
	}
	return out
}
