package sim

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// Two runs of the same scenario must produce byte-identical traces —
// the core determinism contract, independent of the checked-in goldens.
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Trace.Bytes(), b.Trace.Bytes()) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)",
					len(a.Trace.Bytes()), len(b.Trace.Bytes()))
			}
		})
	}
}

func TestDifferentSeedDifferentTrace(t *testing.T) {
	sc := Brownout()
	a, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Trace.Bytes(), b.Trace.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// The trace must be internally consistent: canonical ordering, time
// conservation, energy feasibility, batteries within capacity.
func TestTraceInvariants(t *testing.T) {
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if got := len(tr.Records); got != tr.Steps*tr.Devices {
				t.Fatalf("%d records for %d steps x %d devices", got, tr.Steps, tr.Devices)
			}
			for step := 0; step < tr.Steps; step++ {
				for dev := 0; dev < tr.Devices; dev++ {
					r := tr.At(step, dev)
					if r.Step != step || r.Device != dev {
						t.Fatalf("record at (%d,%d) holds (%d,%d): ordering broken",
							step, dev, r.Step, r.Device)
					}
					cfg := res.Configs[dev]
					var active float64
					for _, a := range r.Active {
						if a < -1e-9 {
							t.Fatalf("step %d dev %d: negative active time %v", step, dev, a)
						}
						active += a
					}
					if total := active + r.OffS + r.DeadS; math.Abs(total-cfg.Period) > 1e-6 {
						t.Fatalf("step %d dev %d: allocation totals %v s, period is %v s",
							step, dev, total, cfg.Period)
					}
					if r.BatteryJ < -1e-9 || r.BatteryJ > capacityOf(t, res, dev)+1e-9 {
						t.Fatalf("step %d dev %d: battery %v outside [0, capacity]", step, dev, r.BatteryJ)
					}
					if r.ConsumedJ < 0 {
						t.Fatalf("step %d dev %d: negative consumption %v", step, dev, r.ConsumedJ)
					}
				}
			}
		})
	}
}

// capacityOf infers device dev's battery capacity from the scenario and
// its per-device overrides by probing the recorded battery ceiling — the
// scenario library only raises capacity via overrides, so the base
// capacity plus the override table bounds it.
func capacityOf(t *testing.T, res *Result, dev int) float64 {
	t.Helper()
	// MixedFleet raises device 1 mod 3 to 150 J; everything else uses
	// the scenario capacity.
	if res.Scenario.Name == "mixed-fleet" && dev%3 == 1 {
		return 150
	}
	return res.Scenario.CapacityJ
}

// The cache-hot scenario exists to prove budget correlation: all
// sixteen devices must collapse onto one solve per hour.
func TestCacheHotHitRate(t *testing.T) {
	res, err := Run(context.Background(), CacheHot())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats == nil {
		t.Fatal("cache-hot ran without a cache")
	}
	if rate := res.Summary.CacheHitRate; rate < 0.90 {
		t.Fatalf("cache hit rate %.3f below 0.90: budgets decorrelated (stats %+v)",
			rate, *res.CacheStats)
	}
	// Distinct solves should be about one per hour, not per device-hour.
	if res.CacheStats.Misses > uint64(res.Trace.Steps)+4 {
		t.Fatalf("%d cache misses for %d hours: correlated devices are not sharing entries",
			res.CacheStats.Misses, res.Trace.Steps)
	}
}

// Forecast-driven budgets must decouple the budget from the actual
// harvest after the warm-up day, and stay within the predictor's range.
func TestForecastBudgetsDecouple(t *testing.T) {
	res, err := Run(context.Background(), CloudyBursts())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	warm, post := 0, 0
	var diverged bool
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Step < 24 {
			if r.BudgetJ != r.HarvestJ {
				t.Fatalf("step %d dev %d: warm-up budget %v != harvest %v",
					r.Step, r.Device, r.BudgetJ, r.HarvestJ)
			}
			warm++
			continue
		}
		post++
		if r.BudgetJ != r.HarvestJ {
			diverged = true
		}
		if r.BudgetJ < 0 {
			t.Fatalf("step %d dev %d: negative forecast budget %v", r.Step, r.Device, r.BudgetJ)
		}
	}
	if warm == 0 || post == 0 {
		t.Fatalf("degenerate horizon: %d warm-up, %d forecast records", warm, post)
	}
	if !diverged {
		t.Fatal("forecast budgets never diverged from actual harvest")
	}
}

// Fault injection must actually fire at the configured rate and degrade
// utility relative to accuracy.
func TestFaultInjection(t *testing.T) {
	res, err := Run(context.Background(), Brownout())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.FaultCount == 0 {
		t.Fatal("brownout scenario injected no faults at FaultRate=0.12")
	}
	for i := range res.Trace.Records {
		r := &res.Trace.Records[i]
		if r.Fault == "none" {
			if r.Utility != r.Accuracy {
				t.Fatalf("step %d dev %d: utility %v != accuracy %v without a fault",
					r.Step, r.Device, r.Utility, r.Accuracy)
			}
		} else if r.Accuracy > 0 && r.Utility >= r.Accuracy {
			t.Fatalf("step %d dev %d: fault %s did not degrade utility (%v >= %v)",
				r.Step, r.Device, r.Fault, r.Utility, r.Accuracy)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no devices":    func(s *Scenario) { s.Devices = 0 },
		"bad month":     func(s *Scenario) { s.Month = 13 },
		"too many days": func(s *Scenario) { s.Days = 40 },
		"neg noise":     func(s *Scenario) { s.Noise = -1 },
		"bad fault":     func(s *Scenario) { s.FaultRate = 2 },
		"bad jitter":    func(s *Scenario) { s.DeviceJitter = 1 },
		"neg scale":     func(s *Scenario) { s.HarvestScale = -2 },
	}
	for name, mutate := range cases {
		sc := ClearMonth()
		mutate(&sc)
		if _, err := Run(context.Background(), sc); err == nil {
			t.Errorf("%s: Run accepted an invalid scenario", name)
		}
	}
	if _, err := Run(context.Background(), Scenario{}); err == nil {
		t.Error("zero scenario must not run")
	}
	sc := ClearMonth()
	sc.Solver = "no-such-backend"
	if _, err := Run(context.Background(), sc); err == nil {
		t.Error("unknown solver must fail the run")
	}
}

func TestLookup(t *testing.T) {
	for _, want := range Library() {
		got, err := Lookup(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name || got.Seed != want.Seed {
			t.Fatalf("Lookup(%q) returned %q seed %d", want.Name, got.Name, got.Seed)
		}
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Lookup of unknown scenario: %v", err)
	}
}

// Cancelling mid-run must abort with the context error rather than
// recording a partial trace as success.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ClearMonth()); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// The mixed fleet must actually be heterogeneous: the α = 2 population
// plans differently from the α = 0.5 population under the same sky.
func TestMixedFleetHeterogeneous(t *testing.T) {
	res, err := Run(context.Background(), MixedFleet())
	if err != nil {
		t.Fatal(err)
	}
	if a0, a1 := res.Configs[0].Alpha, res.Configs[1].Alpha; a0 == a1 {
		t.Fatalf("device 0 and 1 share alpha %v: override did not apply", a0)
	}
}
