package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server binds a Service to a listener and owns the SIGTERM drain
// sequence. It exists so cmd/reapd stays a flag-parsing shell and the
// drain semantics are testable in-process.
type Server struct {
	svc  *Service
	http *http.Server
	lis  net.Listener
}

// NewServer wraps svc for serving on addr (host:port; ":0" picks a free
// port, exposed by Addr after Start).
func NewServer(svc *Service, addr string) *Server {
	return &Server{
		svc: svc,
		http: &http.Server{
			Addr:              addr,
			Handler:           svc.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
}

// Start binds the listener. It returns once the address is bound, so
// callers can read Addr immediately; Serve drives the accept loop.
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.http.Addr, err)
	}
	s.lis = lis
	return nil
}

// Addr returns the bound address; only valid after Start.
func (s *Server) Addr() string {
	if s.lis == nil {
		return s.http.Addr
	}
	return s.lis.Addr().String()
}

// Serve runs the accept loop until Drain (or a listener error). A drain
// ends Serve with nil, mirroring http.ErrServerClosed.
func (s *Server) Serve() error {
	err := s.http.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Drain is the graceful-shutdown sequence cmd/reapd runs on SIGTERM:
// the service stops admitting new work (in-flight solves and telemetry
// events finish and answer), then the HTTP server closes its listener
// and waits for active requests to complete, bounded by ctx. After the
// deadline any stragglers are cut off hard. Once no request can be in
// flight, the journal compacts a final snapshot and closes, so a clean
// shutdown boots back with zero replay.
func (s *Server) Drain(ctx context.Context) error {
	s.svc.Drain()
	if err := s.http.Shutdown(ctx); err != nil {
		// Deadline hit with connections still open: close them rather
		// than leak the process.
		_ = s.http.Close()
		_ = s.svc.Close()
		return fmt.Errorf("service: drain: %w", err)
	}
	return s.svc.Close()
}
