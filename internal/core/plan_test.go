package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomPlanConfig draws a valid configuration: 1-12 design points with
// powers above POff, accuracies in [0,1], α in a spread of exponents
// (including the degenerate α = 0), and an occasional zero POff.
func randomPlanConfig(rng *rand.Rand) Config {
	c := Config{
		Period: 600 + rng.Float64()*7200,
		POff:   rng.Float64() * 1e-4,
		Alpha:  []float64{0, 0.5, 1, 1, 2, 3.7}[rng.Intn(6)],
	}
	if rng.Intn(8) == 0 {
		c.POff = 0
	}
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		c.DPs = append(c.DPs, DesignPoint{
			Name:     "dp",
			Accuracy: rng.Float64(),
			Power:    c.POff + 1e-5 + rng.Float64()*5e-3,
		})
	}
	return c
}

// budgetSweep returns a budget grid spanning all four regions of the
// configuration: below the idle floor, dense across the envelope, and
// beyond saturation — with every region boundary included exactly.
func budgetSweep(c Config) []float64 {
	max := c.MaxUsefulBudget()
	budgets := []float64{0, c.MinBudget() / 2}
	for i := 0; i <= 400; i++ {
		budgets = append(budgets, 1.25*max*float64(i)/400)
	}
	return append(budgets, RegionBoundaries(c)...)
}

// TestPlanMatchesSolversOnDenseSweep is the exactness property: over
// randomized configurations and a dense budget sweep spanning every
// Region, the compiled plan's objective agrees with both iterative
// solvers to 1e-9 and its allocations are feasible.
func TestPlanMatchesSolversOnDenseSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	configs := []Config{DefaultConfig()}
	for i := 0; i < 30; i++ {
		configs = append(configs, randomPlanConfig(rng))
	}
	regions := map[Region]int{}
	for ci, c := range configs {
		p, err := NewPlan(c)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		for _, budget := range budgetSweep(c) {
			got, err := p.Solve(budget)
			if err != nil {
				t.Fatalf("config %d plan at %v J: %v", ci, budget, err)
			}
			// Feasibility: time identity and energy budget.
			if d := math.Abs(got.Total() - c.Period); d > 1e-6 {
				t.Fatalf("config %d at %v J: time identity off by %v", ci, budget, d)
			}
			if e := got.Energy(c); e > budget+1e-6 {
				t.Fatalf("config %d at %v J: plan spends %v J", ci, budget, e)
			}
			jPlan := got.Objective(c)
			if d := math.Abs(jPlan - p.Value(budget)); d > 1e-9 {
				t.Fatalf("config %d at %v J: Solve objective %v but Value %v", ci, budget, jPlan, p.Value(budget))
			}
			sx, err := Solve(c, budget)
			if err != nil {
				t.Fatalf("config %d simplex at %v J: %v", ci, budget, err)
			}
			en, err := SolveEnumerate(c, budget)
			if err != nil {
				t.Fatalf("config %d enumerate at %v J: %v", ci, budget, err)
			}
			if d := math.Abs(jPlan - sx.Objective(c)); d > 1e-9 {
				t.Fatalf("config %d at %v J (%s): plan %v vs simplex %v (Δ %g)",
					ci, budget, Classify(c, budget), jPlan, sx.Objective(c), d)
			}
			if d := math.Abs(jPlan - en.Objective(c)); d > 1e-9 {
				t.Fatalf("config %d at %v J (%s): plan %v vs enumerate %v (Δ %g)",
					ci, budget, Classify(c, budget), jPlan, en.Objective(c), d)
			}
			regions[Classify(c, budget)]++
		}
	}
	for _, r := range []Region{RegionDead, Region1, Region2, Region3} {
		if regions[r] == 0 {
			t.Errorf("sweep never visited %v", r)
		}
	}
}

// TestPlanValueConcaveNonDecreasing pins the envelope's defining shape:
// J*(Eb) is non-decreasing in the budget and concave (midpoint above
// the chord) over randomized configurations.
func TestPlanValueConcaveNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for ci := 0; ci < 40; ci++ {
		c := randomPlanConfig(rng)
		p, err := NewPlan(c)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		max := 1.25 * c.MaxUsefulBudget()
		const steps = 300
		grid := make([]float64, steps+1)
		vals := make([]float64, steps+1)
		for i := range grid {
			grid[i] = max * float64(i) / steps
			vals[i] = p.Value(grid[i])
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-1e-12 {
				t.Fatalf("config %d: J* decreases from %v to %v between %v and %v J",
					ci, vals[i-1], vals[i], grid[i-1], grid[i])
			}
		}
		// Concavity over the LP's domain [MinBudget, ∞): the dead region
		// below the idle floor is a separate regime (J* jumps to zero
		// there), so chords must not span it.
		for i := 0; i < len(grid); i++ {
			if grid[i] < c.MinBudget() {
				continue
			}
			for j := i + 2; j < len(grid); j += 37 {
				mid := (grid[i] + grid[j]) / 2
				chord := (vals[i] + vals[j]) / 2
				if v := p.Value(mid); v < chord-1e-9 {
					t.Fatalf("config %d: J*(%v)=%v below chord %v of [%v, %v]",
						ci, mid, v, chord, grid[i], grid[j])
				}
			}
		}
	}
}

// TestPlanBreakpointsAgreeWithRegionBoundaries: every breakpoint is one
// of RegionBoundaries' budgets (the idle floor or a design point's
// saturation energy), the first is the floor, the last is the
// saturation energy of the best design point, and they strictly
// increase. The converse containment is deliberately absent:
// LP-dominated design points (under the concave envelope) contribute a
// region boundary but never a breakpoint — the paper's own Table 2 set
// has one such point (DP2 under α = 1).
func TestPlanBreakpointsAgreeWithRegionBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	configs := []Config{DefaultConfig()}
	for i := 0; i < 40; i++ {
		configs = append(configs, randomPlanConfig(rng))
	}
	for ci, c := range configs {
		p, err := NewPlan(c)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		bps := p.Breakpoints()
		if len(bps) == 0 {
			t.Fatalf("config %d: no breakpoints", ci)
		}
		if bps[0] != c.MinBudget() {
			t.Fatalf("config %d: first breakpoint %v, want idle floor %v", ci, bps[0], c.MinBudget())
		}
		if !sort.Float64sAreSorted(bps) {
			t.Fatalf("config %d: breakpoints unsorted: %v", ci, bps)
		}
		for i := 1; i < len(bps); i++ {
			if bps[i] <= bps[i-1] {
				t.Fatalf("config %d: breakpoints not strictly increasing: %v", ci, bps)
			}
		}
		bounds := RegionBoundaries(c)
		for _, bp := range bps {
			found := false
			for _, b := range bounds {
				if b == bp {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("config %d: breakpoint %v is not a region boundary %v", ci, bp, bounds)
			}
		}
		// The last breakpoint saturates the most valuable state; past it
		// the value is flat at the maximum weight.
		if d := math.Abs(p.Value(bps[len(bps)-1]) - p.Value(2*bps[len(bps)-1]+1)); d > 0 {
			t.Fatalf("config %d: value not flat past the last breakpoint (Δ %g)", ci, d)
		}
	}
	// The documented concrete case: under α = 1 the paper's DP2 lies
	// strictly under the DP3–DP1 chord, so the default plan has exactly
	// five breakpoints for six region boundaries.
	p, err := NewPlan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, bounds := len(p.Breakpoints()), len(RegionBoundaries(DefaultConfig())); got != bounds-1 {
		t.Fatalf("paper config: %d breakpoints for %d boundaries, want DP2 excluded (one fewer)", got, bounds)
	}
}

// TestPlanSolveIntoReusesBuffer: after the first call, SolveInto must
// keep writing into the same Active backing array and agree with Solve.
func TestPlanSolveIntoReusesBuffer(t *testing.T) {
	c := DefaultConfig()
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	var a Allocation
	if err := p.SolveInto(5, &a); err != nil {
		t.Fatal(err)
	}
	first := &a.Active[0]
	for _, budget := range budgetSweep(c) {
		if err := p.SolveInto(budget, &a); err != nil {
			t.Fatal(err)
		}
		if &a.Active[0] != first {
			t.Fatalf("SolveInto reallocated the Active slice at %v J", budget)
		}
		want, err := p.Solve(budget)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Active {
			if a.Active[i] != want.Active[i] {
				t.Fatalf("SolveInto and Solve disagree at %v J: %v vs %v", budget, a, want)
			}
		}
		if a.Off != want.Off || a.Dead != want.Dead {
			t.Fatalf("SolveInto and Solve disagree at %v J: %v vs %v", budget, a, want)
		}
	}
}

// TestPlanErrorsAndDegenerates covers the argument contract and the
// all-zero-weight degeneracy (every accuracy zero under α > 0), where
// the whole envelope collapses to the off vertex.
func TestPlanErrorsAndDegenerates(t *testing.T) {
	if _, err := NewPlan(Config{}); err == nil {
		t.Fatal("NewPlan accepted an invalid config")
	}
	c := DefaultConfig()
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-1, math.NaN()} {
		if _, err := p.Solve(bad); err == nil {
			t.Errorf("Solve(%v) accepted", bad)
		}
	}
	if !math.IsNaN(p.Value(math.NaN())) {
		t.Error("Value(NaN) not NaN")
	}

	degen := DefaultConfig()
	for i := range degen.DPs {
		degen.DPs[i].Accuracy = 0
	}
	dp, err := NewPlan(degen)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dp.Breakpoints()); got != 1 {
		t.Fatalf("all-zero-weight plan has %d breakpoints, want 1 (the off vertex)", got)
	}
	a, err := dp.Solve(5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off != degen.Period || a.ActiveTime() != 0 {
		t.Fatalf("all-zero-weight plan at 5 J: %v, want the full period off", a)
	}
	// Every allocation is optimal when all weights are zero; enumerate
	// happens to pick a different zero-objective vertex, so only the
	// objective is comparable.
	en, err := SolveEnumerate(degen, 5)
	if err != nil {
		t.Fatal(err)
	}
	if en.Objective(degen) != 0 || a.Objective(degen) != 0 {
		t.Fatalf("degenerate objectives nonzero: plan %v, enumerate %v",
			a.Objective(degen), en.Objective(degen))
	}
}

// TestControllerPlanFastPath pins the controller's zero-allocation solve
// path: a controller with a compiled plan steps identically to the
// simplex default, recompiles on SetAlpha, and rejects mismatched plans.
func TestControllerPlanFastPath(t *testing.T) {
	cfg := DefaultConfig()
	planned, err := NewController(cfg, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := planned.SetPlan(p); err != nil {
		t.Fatal(err)
	}
	reference, err := NewController(cfg, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	for step, h := range []float64{0, 0.5, 3, 9, 30, 1, 0} {
		a, err := planned.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reference.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(a.Objective(cfg) - b.Objective(cfg)); d > 1e-9 {
			t.Fatalf("step %d: plan objective diverges from simplex by %g", step, d)
		}
		if d := math.Abs(planned.Battery() - reference.Battery()); d > 1e-9 {
			t.Fatalf("step %d: battery diverges by %g", step, d)
		}
		if err := planned.Report(a.Energy(cfg)); err != nil {
			t.Fatal(err)
		}
		if err := reference.Report(b.Energy(cfg)); err != nil {
			t.Fatal(err)
		}
	}

	// SetAlpha recompiles the plan in place.
	if err := planned.SetAlpha(2); err != nil {
		t.Fatal(err)
	}
	a, err := planned.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := planned.Config()
	want, err := Solve(cfg2, planned.LastBudget())
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a.Objective(cfg2) - want.Objective(cfg2)); d > 1e-9 {
		t.Fatalf("after SetAlpha(2): plan objective diverges from simplex by %g", d)
	}

	// A plan compiled from a different configuration is rejected.
	other := DefaultConfig()
	other.Alpha = 3
	op, err := NewPlan(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := planned.SetPlan(op); err == nil {
		t.Fatal("SetPlan accepted a plan for a different configuration")
	}
}

// BenchmarkPlanSolveInto measures the steady-state compiled solve: a
// binary search plus two multiplies, 0 allocs/op.
func BenchmarkPlanSolveInto(b *testing.B) {
	p, err := NewPlan(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var a Allocation
	budgets := [...]float64{0.05, 1.3, 4.5, 5.0, 7.7, 11.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SolveInto(budgets[i%len(budgets)], &a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCompile prices NewPlan, the once-per-configuration cost
// the parametric backend amortizes away.
func BenchmarkPlanCompile(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The weight-hoisting micro-benchmarks price the satellite fix: the
// enumerate solver's value() used to call math.Pow inside the O(N²)
// vertex loop; the hoisted weight vector computes the pows once per
// solve and indexes thereafter.
func benchWeightConfig() Config {
	rng := rand.New(rand.NewSource(7))
	c := Config{Period: 3600, POff: DefaultPOff, Alpha: 1.7}
	for i := 0; i < 100; i++ {
		c.DPs = append(c.DPs, DesignPoint{
			Name:     "dp",
			Accuracy: rng.Float64(),
			Power:    1e-3 + rng.Float64()*2e-3,
		})
	}
	return c
}

// BenchmarkWeightsPerVertexPair is the old pattern: one pow per vertex
// visit across all N(N+1)/2 candidate pairs.
func BenchmarkWeightsPerVertexPair(b *testing.B) {
	c := benchWeightConfig()
	n := len(c.DPs)
	var sink float64
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			for k := j + 1; k < n; k++ {
				sink += c.weight(j) + c.weight(k)
			}
		}
	}
	_ = sink
}

// BenchmarkWeightsHoisted is the fixed pattern: one weightVector call
// per solve, indexed lookups in the pair loop.
func BenchmarkWeightsHoisted(b *testing.B) {
	c := benchWeightConfig()
	n := len(c.DPs)
	weights := make([]float64, n)
	var sink float64
	for i := 0; i < b.N; i++ {
		c.weightVector(weights)
		for j := 0; j < n; j++ {
			for k := j + 1; k < n; k++ {
				sink += weights[j] + weights[k]
			}
		}
	}
	_ = sink
}
