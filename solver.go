package reap

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Solver is one optimizer backend: it maps a configuration and an energy
// budget for one activity period onto a time allocation. Implementations
// must be safe for concurrent use — the Fleet and SolveBatch layers call
// a single Solver from many goroutines. Decorators compose at this seam:
// SolveCache.Wrap returns a caching Solver that can itself be registered
// under a new name.
type Solver interface {
	Solve(ctx context.Context, cfg Config, budget float64) (Allocation, error)
}

// SolverFunc adapts an ordinary function to the Solver interface.
type SolverFunc func(ctx context.Context, cfg Config, budget float64) (Allocation, error)

// Solve calls f.
func (f SolverFunc) Solve(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
	return f(ctx, cfg, budget)
}

// Names of the built-in solver backends, registered at init.
const (
	// SolverSimplex is the paper's Algorithm 1: a dense two-phase simplex
	// over the period and budget constraints. The default backend.
	SolverSimplex = "simplex"
	// SolverEnumerate solves the same LP by direct vertex enumeration —
	// an independent cross-check that is faster for small design sets.
	SolverEnumerate = "enumerate"
)

var solverRegistry = struct {
	sync.RWMutex
	m map[string]Solver
}{m: map[string]Solver{}}

func init() {
	mustRegisterSolver(SolverSimplex, SolverFunc(core.SolveContext))
	mustRegisterSolver(SolverEnumerate, SolverFunc(core.SolveEnumerateContext))
}

func mustRegisterSolver(name string, s Solver) {
	if err := RegisterSolver(name, s); err != nil {
		panic(err)
	}
}

// RegisterSolver adds a named backend to the registry, making it
// selectable through WithSolver and Request.Solver. Registration fails on
// an empty name, a nil Solver, or a name already taken — backends are
// never silently replaced.
func RegisterSolver(name string, s Solver) error {
	if name == "" {
		return fmt.Errorf("reap: solver name must be non-empty")
	}
	if s == nil {
		return fmt.Errorf("reap: solver %q is nil", name)
	}
	solverRegistry.Lock()
	defer solverRegistry.Unlock()
	if _, dup := solverRegistry.m[name]; dup {
		return fmt.Errorf("reap: solver %q already registered", name)
	}
	solverRegistry.m[name] = s
	return nil
}

// LookupSolver returns the backend registered under name. Unknown names
// yield an error wrapping ErrUnknownSolver that lists the known backends.
func LookupSolver(name string) (Solver, error) {
	solverRegistry.RLock()
	s, ok := solverRegistry.m[name]
	solverRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownSolver, name, Solvers())
	}
	return s, nil
}

// Solvers returns the names of all registered backends, sorted.
func Solvers() []string {
	solverRegistry.RLock()
	names := make([]string, 0, len(solverRegistry.m))
	for name := range solverRegistry.m {
		names = append(names, name)
	}
	solverRegistry.RUnlock()
	sort.Strings(names)
	return names
}
