// Package dsp provides the signal-processing primitives the HAR design
// points are built from: the statistical feature bank, the 16-point FFT
// applied to the stretch sensor, the Haar discrete wavelet transform, and
// the decimation/truncation operators behind the "sensing period" knob of
// Figure 2 in the paper.
package dsp

import (
	"math"
	"sort"

	"repro/internal/fpx"
)

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Min returns the minimum of x, or 0 for empty input.
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x, or 0 for empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Range returns max - min.
func Range(x []float64) float64 { return Max(x) - Min(x) }

// RMS returns the root mean square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Energy returns the signal energy Σx².
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// MAD returns the mean absolute deviation around the mean.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		s += math.Abs(v - m)
	}
	return s / float64(len(x))
}

// Skewness returns the standardized third moment, or 0 when the variance
// is (numerically) zero.
func Skewness(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m, sd := Mean(x), Std(x)
	if sd < 1e-12 {
		return 0
	}
	var s float64
	for _, v := range x {
		d := (v - m) / sd
		s += d * d * d
	}
	return s / float64(len(x))
}

// Kurtosis returns the standardized fourth moment minus 3 (excess
// kurtosis), or 0 when the variance is (numerically) zero.
func Kurtosis(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m, sd := Mean(x), Std(x)
	if sd < 1e-12 {
		return 0
	}
	var s float64
	for _, v := range x {
		d := (v - m) / sd
		s += d * d * d * d
	}
	return s/float64(len(x)) - 3
}

// ZeroCrossings counts sign changes in x (zeros are skipped).
func ZeroCrossings(x []float64) int {
	count := 0
	prev := 0.0
	for _, v := range x {
		if fpx.Zero(v) {
			continue
		}
		if !fpx.Zero(prev) && math.Signbit(v) != math.Signbit(prev) {
			count++
		}
		prev = v
	}
	return count
}

// MeanCrossings counts crossings of the signal mean, the zero-crossing
// rate of the detrended signal.
func MeanCrossings(x []float64) int {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	shifted := make([]float64, len(x))
	for i, v := range x {
		shifted[i] = v - m
	}
	return ZeroCrossings(shifted)
}

// Percentile returns the p-quantile of x for p in [0,1] using linear
// interpolation between order statistics.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// IQR returns the interquartile range (75th minus 25th percentile).
func IQR(x []float64) float64 { return Percentile(x, 0.75) - Percentile(x, 0.25) }

// Correlation returns the Pearson correlation of a and b, or 0 when either
// signal has (numerically) zero variance or the lengths differ.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa < 1e-24 || sbb < 1e-24 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// SMA returns the signal magnitude area of a set of axes: the mean of the
// summed absolute values across axes, a standard HAR intensity feature.
func SMA(axes ...[]float64) float64 {
	if len(axes) == 0 || len(axes[0]) == 0 {
		return 0
	}
	n := len(axes[0])
	var s float64
	for _, axis := range axes {
		for _, v := range axis {
			s += math.Abs(v)
		}
	}
	return s / float64(n)
}
