package wire_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	reap "repro"
	"repro/wire"
)

func ptr(v float64) *float64 { return &v }

// TestRoundTrip marshals each request/response type and strict-decodes
// it back: the schema must survive its own wire format exactly. Every
// type a client or server serializes appears here, so adding a field
// without JSON-compatible types breaks this test, not production.
func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   any
		out  any
	}{
		{"solve_request", &wire.SolveRequest{
			V:       wire.Version,
			BudgetJ: 5.25,
			Solver:  "plan",
			Config: &wire.Config{
				PeriodS: 1800,
				POffW:   ptr(0),
				Alpha:   ptr(2),
				DesignPoints: []wire.DesignPoint{
					{Name: "DP1", Accuracy: 0.9, PowerW: 2e-3},
					{Accuracy: 0.5, PowerW: 1e-3},
				},
			},
		}, &wire.SolveRequest{}},
		{"solve_response", &wire.SolveResponse{
			V:                wire.Version,
			Allocation:       wire.Allocation{ActiveS: []float64{1, 2, 3}, OffS: 4, DeadS: 0},
			EnergyJ:          1.5,
			ExpectedAccuracy: 0.82,
		}, &wire.SolveResponse{}},
		{"batch_request", &wire.BatchSolveRequest{
			V: wire.Version,
			Items: []wire.SolveItem{
				{BudgetJ: 1},
				{BudgetJ: 2, Solver: "simplex"},
			},
		}, &wire.BatchSolveRequest{}},
		{"batch_response", &wire.BatchSolveResponse{
			V: wire.Version,
			Results: []wire.SolveResult{
				{Solve: &wire.SolveResponse{V: wire.Version, Allocation: wire.Allocation{ActiveS: []float64{1}}}},
				{Error: &wire.Error{Code: wire.CodeInfeasible, Message: "no feasible schedule"}},
			},
		}, &wire.BatchSolveResponse{}},
		{"report_request", &wire.ReportRequest{
			V:       wire.Version,
			Reports: []wire.DeviceReport{{Device: 3, ConsumedJ: 0.25}},
		}, &wire.ReportRequest{}},
		{"report_response", &wire.ReportResponse{V: wire.Version, Accepted: 7}, &wire.ReportResponse{}},
		{"telemetry_event", &wire.TelemetryEvent{
			V: wire.Version, Device: 12, HarvestJ: ptr(4.5), ConsumedJ: ptr(1.25),
		}, &wire.TelemetryEvent{}},
		{"telemetry_result", &wire.TelemetryResult{
			V: wire.Version, Device: 12,
			Allocation: &wire.Allocation{ActiveS: []float64{0.5}, OffS: 1},
		}, &wire.TelemetryResult{}},
		{"stats_response", &wire.StatsResponse{
			V: wire.Version, Devices: 1024, Shards: 8, Solves: 10, Steps: 3,
			Reports: 2, AlphaSets: 1, RateLimited: 1, Shed: 4, Panics: 2,
			ShardsQuarantined: 1, TotalBatteryJ: 512.5, Draining: true,
			Cache:   &wire.CacheStats{Hits: 5, Misses: 1, Entries: 1, Capacity: 64},
			Journal: &wire.JournalStats{Seq: 42, SnapshotSeq: 30, Replayed: 12, Appended: 5, TornTail: true, Compactions: 2, FsyncPolicy: "interval"},
		}, &wire.StatsResponse{}},
		{"alpha_request", &wire.AlphaRequest{V: wire.Version, Device: 9, Alpha: 0.5}, &wire.AlphaRequest{}},
		{"alpha_response", &wire.AlphaResponse{V: wire.Version, Device: 9, Alpha: 0.5}, &wire.AlphaResponse{}},
		{"healthz_response", &wire.HealthzResponse{V: wire.Version, Status: wire.HealthDraining}, &wire.HealthzResponse{}},
		{"error_response", &wire.ErrorResponse{
			V:     wire.Version,
			Error: wire.Error{Code: wire.CodeRateLimited, Message: "tenant over budget"},
		}, &wire.ErrorResponse{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(tc.in)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if err := wire.DecodeStrict(strings.NewReader(string(raw)), tc.out); err != nil {
				t.Fatalf("strict decode of own output %s: %v", raw, err)
			}
			if !reflect.DeepEqual(tc.in, tc.out) {
				t.Fatalf("round trip drifted:\n in: %#v\nout: %#v", tc.in, tc.out)
			}
		})
	}
}

func TestDecodeStrictRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"unknown_field", `{"v":1,"budget_j":1,"bogus":true}`},
		{"syntax_error", `{"v":1,`},
		{"wrong_type", `{"v":"one"}`},
		{"trailing_data", `{"v":1,"budget_j":1}{"v":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req wire.SolveRequest
			err := wire.DecodeStrict(strings.NewReader(tc.body), &req)
			if err == nil {
				t.Fatalf("strict decode accepted %s", tc.body)
			}
			var we *wire.Error
			if !errors.As(err, &we) || we.Code != wire.CodeMalformed {
				t.Fatalf("err %v, want *wire.Error with CodeMalformed", err)
			}
		})
	}
}

func TestCheckVersion(t *testing.T) {
	if err := wire.CheckVersion(wire.Version); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	for _, v := range []int{0, -1, wire.Version + 1} {
		err := wire.CheckVersion(v)
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeUnknownVersion {
			t.Fatalf("CheckVersion(%d) = %v, want CodeUnknownVersion", v, err)
		}
	}
}

// TestCodeForError pins the sentinel-taxonomy → wire-code mapping: a
// stable contract clients branch on.
func TestCodeForError(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{fmt.Errorf("wrapped: %w", reap.ErrInvalidConfig), wire.CodeInvalidConfig},
		{fmt.Errorf("wrapped: %w", reap.ErrBudgetNegative), wire.CodeBudgetNegative},
		{fmt.Errorf("wrapped: %w", reap.ErrInfeasible), wire.CodeInfeasible},
		{fmt.Errorf("wrapped: %w", reap.ErrSolverFailure), wire.CodeSolverFailure},
		{fmt.Errorf("wrapped: %w", reap.ErrUnknownSolver), wire.CodeUnknownSolver},
		{context.Canceled, wire.CodeDraining},
		{context.DeadlineExceeded, wire.CodeDeadlineExceeded},
		{fmt.Errorf("solve: %w", context.DeadlineExceeded), wire.CodeDeadlineExceeded},
		{errors.New("mystery"), wire.CodeInternal},
	}
	for _, tc := range cases {
		if got := wire.CodeForError(tc.err); got != tc.code {
			t.Errorf("CodeForError(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
	if got := wire.CodeForError(nil); got != "" {
		t.Errorf("CodeForError(nil) = %q, want empty", got)
	}
}

// TestAsError: a *wire.Error anywhere in the chain passes through
// unmodified; anything else is classified by CodeForError.
func TestAsError(t *testing.T) {
	orig := wire.Errorf(wire.CodeUnknownDevice, "device 99")
	if got := wire.AsError(fmt.Errorf("handling: %w", orig)); got != orig {
		t.Fatalf("AsError did not pass through the wire error: %v", got)
	}
	got := wire.AsError(fmt.Errorf("x: %w", reap.ErrInfeasible))
	if got.Code != wire.CodeInfeasible {
		t.Fatalf("AsError classified %q, want infeasible", got.Code)
	}
}

// TestConfigToReapDefaults: the wire config's absent-field semantics —
// zero/omitted selects the paper default, explicit zero stays zero.
func TestConfigToReapDefaults(t *testing.T) {
	var nilCfg *wire.Config
	cfg := nilCfg.ToReap()
	def, err := reap.NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Period != def.Period || cfg.POff != def.POff || cfg.Alpha != def.Alpha ||
		len(cfg.DPs) != len(def.DPs) {
		t.Fatalf("nil wire config = %+v, want paper defaults %+v", cfg, def)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default conversion invalid: %v", err)
	}

	explicit := (&wire.Config{POffW: ptr(0), Alpha: ptr(0)}).ToReap()
	if explicit.POff != 0 || explicit.Alpha != 0 {
		t.Fatalf("explicit zeros overridden: %+v", explicit)
	}
	if explicit.Period != def.Period {
		t.Fatalf("omitted period not defaulted: %v", explicit.Period)
	}
}

// TestSolveRoundTripThroughWire drives a real solve through the wire
// types end to end: config → reap → solve → wire allocation → back,
// checking the reported energy/accuracy match what the solver's own
// accessors compute.
func TestSolveRoundTripThroughWire(t *testing.T) {
	item := wire.SolveItem{BudgetJ: 5}
	res := reap.SolveBatch(context.Background(), []reap.Request{item.ToRequest()})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	cfg := item.Config.ToReap()
	resp := wire.NewSolveResponse(cfg, res[0].Allocation)
	if resp.V != wire.Version {
		t.Fatalf("response version %d", resp.V)
	}
	if math.Abs(resp.EnergyJ-res[0].Allocation.Energy(cfg)) > 1e-12 {
		t.Fatalf("energy %v != %v", resp.EnergyJ, res[0].Allocation.Energy(cfg))
	}
	back := resp.Allocation.ToReap()
	if math.Abs(back.Objective(cfg)-res[0].Allocation.Objective(cfg)) > 1e-12 {
		t.Fatalf("allocation drifted through the wire")
	}
	if resp.EnergyJ > item.BudgetJ+1e-9 {
		t.Fatalf("allocation spends %v J of a %v J budget", resp.EnergyJ, item.BudgetJ)
	}
}
