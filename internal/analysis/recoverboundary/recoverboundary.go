// Package recoverboundary enforces the service's panic-containment
// invariant: every goroutine launched inside repro/internal/service
// starts behind a recover boundary.
//
// A panic on a request goroutine is caught by the service's recover
// middleware; a panic on a goroutine the service spawned itself is
// caught by nothing and kills the daemon — exactly the failure the
// crash-safety work exists to prevent. resilience.Go wraps the spawn in
// the recover-and-count boundary, so the rule is mechanical: no bare go
// statements in the service package, ever. Other packages are out of
// scope — libraries below the service don't spawn daemon goroutines,
// and binaries own their own lifecycles.
package recoverboundary

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer forbids bare go statements in repro/internal/service.
var Analyzer = &analysis.Analyzer{
	Name: "recoverboundary",
	Doc: "forbid bare go statements in internal/service: service goroutines " +
		"must start via resilience.Go so a panic is recovered and counted",
	Run: run,
}

// inScope reports whether the package must launch goroutines behind a
// recover boundary.
func inScope(pkgPath string) bool {
	return pkgPath == "repro/internal/service" ||
		strings.HasPrefix(pkgPath, "repro/internal/service/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement in internal/service: launch goroutines with "+
						"resilience.Go(name, onPanic, fn) so a panic hits a recover boundary "+
						"instead of killing the daemon")
			}
			return true
		})
	}
	return nil
}
