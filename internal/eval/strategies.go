package eval

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forecast"
	"repro/internal/solar"
)

// StrategyRow compares one budget-allocation strategy over the solar
// month. The paper's REAP is myopic — it optimizes each hour against
// whatever budget the allocation layer hands it; this experiment measures
// how much the allocation layer itself matters, up to a perfect-forecast
// lookahead (the paper's implied future work).
type StrategyRow struct {
	Name string
	// MeanAccuracy is the month-mean expected accuracy (α=1 objective).
	MeanAccuracy float64
	// ActiveHours is the total active time in hours.
	ActiveHours float64
	// RelativeToOracle normalizes MeanAccuracy by the oracle lookahead's.
	RelativeToOracle float64
}

// StrategiesResult is the budget-strategy comparison.
type StrategiesResult struct {
	Rows []StrategyRow
}

// Strategies runs four stacks over the September trace:
//
//  1. greedy: spend each hour's harvest, no storage (battery-less class);
//  2. battery: Kansal-style day-smoothing allocator + myopic REAP;
//  3. ewma-lookahead: receding-horizon planner with the diurnal EWMA
//     forecaster (deployable);
//  4. oracle-lookahead: receding-horizon planner with perfect forecasts
//     (upper bound).
func Strategies(cfg core.Config) (*StrategiesResult, error) {
	tr, err := solar.September2015()
	if err != nil {
		return nil, err
	}
	return StrategiesOn(cfg, tr.Hours)
}

// StrategiesOn evaluates the four stacks on an arbitrary harvest trace.
func StrategiesOn(cfg core.Config, harvest []float64) (*StrategiesResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const capacity = 200.0
	res := &StrategiesResult{}

	sim := &device.Simulator{Cfg: cfg}
	greedy, err := sim.Run(device.REAPPolicy{}, solar.GreedyAllocator{}.Budgets(harvest))
	if err != nil {
		return nil, err
	}
	res.add("greedy (no battery)", greedy)

	batAlloc := solar.BatteryAllocator{CapacityJ: capacity, InitialJ: 0, HorizonHours: 24, Efficiency: 0.9}
	battery, err := sim.Run(device.REAPPolicy{}, batAlloc.Budgets(harvest))
	if err != nil {
		return nil, err
	}
	res.add("battery allocator + myopic REAP", battery)

	ew, err := forecast.NewEWMA(0.5)
	if err != nil {
		return nil, err
	}
	rhEWMA := &device.RecedingHorizon{Cfg: cfg, CapacityJ: capacity, Horizon: 24, Forecast: ew}
	ewmaRun, err := rhEWMA.Run(harvest)
	if err != nil {
		return nil, err
	}
	res.add("EWMA-forecast lookahead", ewmaRun)

	rhOracle := &device.RecedingHorizon{
		Cfg: cfg, CapacityJ: capacity, Horizon: 24,
		Forecast: &device.OracleForecaster{Trace: harvest},
	}
	oracleRun, err := rhOracle.Run(harvest)
	if err != nil {
		return nil, err
	}
	res.add("oracle-forecast lookahead", oracleRun)

	oracleAcc := res.Rows[len(res.Rows)-1].MeanAccuracy
	for i := range res.Rows {
		if oracleAcc > 0 {
			res.Rows[i].RelativeToOracle = res.Rows[i].MeanAccuracy / oracleAcc
		}
	}
	return res, nil
}

func (r *StrategiesResult) add(name string, run *device.RunResult) {
	r.Rows = append(r.Rows, StrategyRow{
		Name:         name,
		MeanAccuracy: run.MeanExpectedAccuracy(),
		ActiveHours:  run.TotalActiveTime() / 3600,
	})
}

// Render prints the strategy grid.
func (r *StrategiesResult) Render() string {
	t := &table{header: []string{"budget strategy", "mean E{a}", "active (h)", "vs oracle"}}
	for _, row := range r.Rows {
		t.add(row.Name, f3(row.MeanAccuracy), f1(row.ActiveHours), f2(row.RelativeToOracle))
	}
	return "Budget-allocation strategies over the solar month (extension; alpha=1)\n" + t.String()
}
