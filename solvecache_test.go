package reap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomConfig draws a valid configuration: 1-8 design points with
// random accuracy/power and a random α, the space the cache must stay
// correct over.
func randomConfig(rng *rand.Rand) Config {
	n := 1 + rng.Intn(8)
	dps := make([]DesignPoint, n)
	for i := range dps {
		dps[i] = DesignPoint{
			Name:     fmt.Sprintf("dp%d", i+1),
			Accuracy: 0.05 + 0.95*rng.Float64(),
			Power:    DefaultPOff + 1e-4 + 5e-3*rng.Float64(),
		}
	}
	return Config{
		Period: DefaultPeriod,
		POff:   DefaultPOff,
		Alpha:  []float64{0, 0.5, 1, 2}[rng.Intn(4)],
		DPs:    dps,
	}
}

// TestSolveCachePropertyFeasibleAndBounded is the cache's correctness
// property: over random configurations, resolutions and budgets, a
// cached allocation (1) never spends more energy than the true budget,
// (2) loses at most resolution·maxslope objective versus the exact
// solve, and (3) still fills the whole period.
func TestSolveCachePropertyFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	exact := LookupSolverMust(t, SolverSimplex)

	for trial := 0; trial < 150; trial++ {
		cfg := randomConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		resolution := []float64{1e-3, 1e-2, 0.1}[rng.Intn(3)]
		sc, err := NewSolveCache(64, resolution)
		if err != nil {
			t.Fatal(err)
		}
		cached := sc.Wrap(exact)
		bound := resolution*maxMarginalValue(cfg) + 1e-9

		maxBudget := 1.2 * cfg.MaxUsefulBudget()
		for k := 0; k < 20; k++ {
			budget := maxBudget * rng.Float64()
			got, err := cached.Solve(ctx, cfg, budget)
			if err != nil {
				t.Fatalf("trial %d budget %v: %v", trial, budget, err)
			}
			want, err := exact.Solve(ctx, cfg, budget)
			if err != nil {
				t.Fatal(err)
			}
			if energy := got.Energy(cfg); energy > budget+1e-9 {
				t.Fatalf("trial %d: cached allocation spends %v J of a %v J budget (infeasible)",
					trial, energy, budget)
			}
			loss := want.Objective(cfg) - got.Objective(cfg)
			if loss > bound || loss < -1e-9 {
				t.Fatalf("trial %d budget %v res %v: objective loss %v outside [0, %v]",
					trial, budget, resolution, loss, bound)
			}
			if math.Abs(got.Total()-cfg.Period) > 1e-6 {
				t.Fatalf("trial %d: cached allocation covers %v s of a %v s period",
					trial, got.Total(), cfg.Period)
			}
		}
	}
}

// TestSolveCacheExactModeBitIdentical: a zero resolution must reproduce
// the uncached path bit for bit.
func TestSolveCacheExactModeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	exact := LookupSolverMust(t, SolverSimplex)
	sc, err := NewSolveCache(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	cached := sc.Wrap(exact)
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		budget := 11 * rng.Float64()
		got, err := cached.Solve(ctx, cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Solve(ctx, cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got.Off != want.Off || got.Dead != want.Dead {
			t.Fatalf("budget %v: exact-mode cache diverged", budget)
		}
		for i := range want.Active {
			if got.Active[i] != want.Active[i] {
				t.Fatalf("budget %v: exact-mode cache diverged on dp%d", budget, i+1)
			}
		}
	}
}

func TestNewSolveCacheValidation(t *testing.T) {
	for _, tc := range []struct {
		size int
		res  float64
	}{{0, 1e-3}, {-4, 1e-3}, {64, -1}, {64, math.NaN()}} {
		if _, err := NewSolveCache(tc.size, tc.res); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("NewSolveCache(%d, %v): err %v, want ErrInvalidConfig", tc.size, tc.res, err)
		}
	}
}

func TestWithSolveCacheOptions(t *testing.T) {
	if _, err := New(WithSolveCache(0, 1e-3)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("bad cache size: err %v, want ErrInvalidConfig", err)
	}
	if _, err := New(WithSharedSolveCache(nil)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil shared cache: err %v, want ErrInvalidConfig", err)
	}

	// A controller built with a shared cache reports its traffic there.
	sc, err := NewSolveCache(128, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(WithSharedSolveCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ctl.Step(5.0); err != nil {
			t.Fatal(err)
		}
	}
	stats := sc.Stats()
	if stats.Misses != 1 || stats.Hits != 2 {
		t.Fatalf("stats %+v, want 1 miss + 2 hits for three identical steps", stats)
	}

	// Later options override earlier ones.
	fleet, err := NewFleet(2, WithSharedSolveCache(sc), WithoutSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fleet.CacheStats(); ok {
		t.Fatal("WithoutSolveCache did not override the shared cache")
	}
}

// TestFleetsShareOneCache: two fleets on one shared cache never solve
// the same bucket twice.
func TestFleetsShareOneCache(t *testing.T) {
	ctx := context.Background()
	sc, err := NewSolveCache(1024, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{2, 4, 6, 8}
	for fleetNo := 0; fleetNo < 2; fleetNo++ {
		fleet, err := NewFleet(len(budgets), WithSharedSolveCache(sc))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fleet.StepAll(ctx, budgets); err != nil {
			t.Fatal(err)
		}
	}
	stats := sc.Stats()
	if stats.Misses != uint64(len(budgets)) {
		t.Fatalf("%d LP solves across two fleets, want %d (one per distinct budget)",
			stats.Misses, len(budgets))
	}
}
