// Fixture loaded as a non-service package: bare go statements are out
// of the recoverboundary analyzer's scope.
package eval

// Spawn is legal here — only internal/service owns daemon goroutines.
func Spawn(work func()) {
	go work()
}
