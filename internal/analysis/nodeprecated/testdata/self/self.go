// Fixture for the nodeprecated analyzer, loaded as a standalone
// package: a package cannot keep calling its own Deprecated: symbols,
// but the deprecated declarations themselves may reference each other
// while they exist.
package fixture

// Old is the original entry point.
//
// Deprecated: use Fresh.
func Old() int { return Fresh() }

// Older predates even Old.
//
// Deprecated: use Fresh. Referencing Old here is exempt — deprecated
// wrappers delegate among themselves until they are deleted together.
func Older() int { return Old() }

// Fresh is the replacement.
func Fresh() int { return 1 }

func caller() int { return Old() } // want `Old is deprecated`

// Knob is a tuning constant nobody should touch anymore.
//
// Deprecated: configure via Fresh.
var Knob = 3

func readKnob() int { return Knob } // want `Knob is deprecated`

func useFresh() int { return Fresh() }
