// Fixture for the ctxflow analyzer, loaded as a library package:
// root contexts are banned and exported functions must use their ctx.
package lib

import "context"

// Solve stands in for a context-taking solve path.
func Solve(ctx context.Context, x float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return x
}

// Background mints a root context in library code.
func Background(x float64) float64 {
	return Solve(context.Background(), x) // want `library code must not call context\.Background`
}

// Todo mints the other root context.
func Todo(x float64) float64 {
	return Solve(context.TODO(), x) // want `library code must not call context\.TODO`
}

// Dropped accepts a context and never reads it.
func Dropped(ctx context.Context, x float64) float64 { // want `Dropped takes a context\.Context "ctx" but never uses it`
	return x
}

// Plumbed passes its context through: the good case.
func Plumbed(ctx context.Context, x float64) float64 {
	return Solve(ctx, x)
}

// Declared uses the blank identifier to declare the drop: allowed.
func Declared(_ context.Context, x float64) float64 {
	return x
}

// dropped is unexported: its signature is not a public promise, so the
// dropped-parameter rule leaves it to reviewers.
func dropped(ctx context.Context, x float64) float64 {
	return x
}

// Shim shows the suppression escape hatch for compatibility shims.
func Shim(x float64) float64 {
	return Solve(context.Background(), x) //lint:reapvet ctxflow -- fixture: context-less compatibility shim
}
