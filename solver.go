package reap

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Solver is one optimizer backend: it maps a configuration and an energy
// budget for one activity period onto a time allocation. Implementations
// must be safe for concurrent use — the Fleet and SolveBatch layers call
// a single Solver from many goroutines. Decorators compose at this seam:
// SolveCache.Wrap returns a caching Solver that can itself be registered
// under a new name.
type Solver interface {
	Solve(ctx context.Context, cfg Config, budget float64) (Allocation, error)
}

// SolverFunc adapts an ordinary function to the Solver interface.
type SolverFunc func(ctx context.Context, cfg Config, budget float64) (Allocation, error)

// Solve calls f.
func (f SolverFunc) Solve(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
	return f(ctx, cfg, budget)
}

// Names of the built-in solver backends, registered at init.
const (
	// SolverSimplex is the paper's Algorithm 1: a dense two-phase simplex
	// over the period and budget constraints. Kept as the reference
	// implementation and cross-check for the plan backend.
	SolverSimplex = "simplex"
	// SolverEnumerate solves the same LP by direct vertex enumeration —
	// an independent cross-check that is faster for small design sets.
	SolverEnumerate = "enumerate"
	// SolverPlan is the compiled parametric backend: each configuration
	// compiles once into its budget-parametric solved form (the concave
	// budget→value envelope, see core.Plan), after which every solve is
	// a binary search over the envelope's breakpoints plus two
	// multiplies. Exact — same optimum as simplex and enumerate to
	// floating-point noise — and the default backend.
	SolverPlan = "plan"
)

// DefaultSolver is the backend New, NewFleet and SolveBatch use when no
// option or request names one: the compiled parametric plan. The
// simplex and enumerate backends remain registered as cross-checks and
// for callers that pin the paper's Algorithm 1.
const DefaultSolver = SolverPlan

var solverRegistry = struct {
	sync.RWMutex
	m map[string]Solver
}{m: map[string]Solver{}}

func init() {
	mustRegisterSolver(SolverSimplex, SolverFunc(core.SolveContext))
	mustRegisterSolver(SolverEnumerate, SolverFunc(core.SolveEnumerateContext))
	mustRegisterSolver(SolverPlan, &planBackend{})
}

// planBackend adapts core.Plan to the Solver interface: it memoizes one
// compiled plan per configuration fingerprint, so fleets, batches and
// repeated solves against the same Config pay compilation (validation,
// the aᵢ^α powers, the envelope sort and hull) exactly once. Like the
// solve cache, entries are keyed by Config.Fingerprint(); a cross-
// configuration hash collision (~2⁻⁶⁴ per pair) would serve the wrong
// plan — callers needing hard isolation can compile core plans
// themselves. The memo is capped: beyond planBackendMaxPlans distinct
// configurations, additional configs compile per solve instead of
// growing the map (adversarial workloads stay bounded; real fleets use
// a handful of configurations).
//
// The memo is a copy-on-write map behind an atomic.Pointer: this is the
// default solve path of every fleet since the plan-first re-tier, so
// the hit path must be a lock-free load — misses (compilation, a
// once-per-configuration event) take a mutex, copy the map and publish
// the extended copy.
type planBackend struct {
	plans atomic.Pointer[map[uint64]*core.Plan]
	mu    sync.Mutex // serializes copy-on-write publication on miss
}

const planBackendMaxPlans = 4096

// planFor returns the compiled plan for cfg, compiling and memoizing on
// first sight.
func (pb *planBackend) planFor(cfg Config) (*core.Plan, error) {
	fp := cfg.Fingerprint()
	if m := pb.plans.Load(); m != nil {
		if p, ok := (*m)[fp]; ok {
			return p, nil
		}
	}
	p, err := core.NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	old := pb.plans.Load()
	if old != nil {
		// Re-check under the lock: a concurrent miss may have published
		// this fingerprint while we compiled. Returning the published
		// plan keeps every caller of one configuration on one *Plan.
		if prev, ok := (*old)[fp]; ok {
			return prev, nil
		}
		if len(*old) >= planBackendMaxPlans {
			return p, nil
		}
	}
	next := make(map[uint64]*core.Plan, 1)
	if old != nil {
		next = make(map[uint64]*core.Plan, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[fp] = p
	pb.plans.Store(&next)
	return p, nil
}

// Solve implements Solver. Argument checks mirror the iterative
// backends: context first, then configuration (on compilation — an
// invalid config never memoizes, so it fails every call), then budget.
func (pb *planBackend) Solve(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
	if err := ctx.Err(); err != nil {
		return Allocation{}, err
	}
	p, err := pb.planFor(cfg)
	if err != nil {
		return Allocation{}, err
	}
	return p.Solve(budget)
}

func mustRegisterSolver(name string, s Solver) {
	if err := RegisterSolver(name, s); err != nil {
		panic(err)
	}
}

// RegisterSolver adds a named backend to the registry, making it
// selectable through WithSolver and Request.Solver. Registration fails on
// an empty name, a nil Solver, or a name already taken — backends are
// never silently replaced.
func RegisterSolver(name string, s Solver) error {
	if name == "" {
		return fmt.Errorf("%w: solver name must be non-empty", ErrInvalidConfig)
	}
	if s == nil {
		return fmt.Errorf("%w: solver %q is nil", ErrInvalidConfig, name)
	}
	solverRegistry.Lock()
	defer solverRegistry.Unlock()
	if _, dup := solverRegistry.m[name]; dup {
		return fmt.Errorf("%w: solver %q already registered", ErrInvalidConfig, name)
	}
	solverRegistry.m[name] = s
	return nil
}

// LookupSolver returns the backend registered under name. Unknown names
// yield an error wrapping ErrUnknownSolver that lists the known backends.
func LookupSolver(name string) (Solver, error) {
	solverRegistry.RLock()
	s, ok := solverRegistry.m[name]
	solverRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownSolver, name, Solvers())
	}
	return s, nil
}

// Solvers returns the names of all registered backends, sorted.
func Solvers() []string {
	solverRegistry.RLock()
	names := make([]string, 0, len(solverRegistry.m))
	for name := range solverRegistry.m {
		names = append(names, name)
	}
	solverRegistry.RUnlock()
	sort.Strings(names)
	return names
}
