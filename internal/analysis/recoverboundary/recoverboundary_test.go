package recoverboundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/recoverboundary"
)

func TestRecoverBoundaryService(t *testing.T) {
	analysistest.Run(t, recoverboundary.Analyzer, "testdata/service", "repro/internal/service")
}

// TestRecoverBoundaryReplicate pins the widened scope: replication
// machinery runs inside the daemon, so its goroutines need the same
// boundary.
func TestRecoverBoundaryReplicate(t *testing.T) {
	analysistest.Run(t, recoverboundary.Analyzer, "testdata/replicate", "repro/internal/replicate")
}

// TestRecoverBoundaryElsewhere checks the scope: bare go statements
// outside internal/service are some other reviewer's problem.
func TestRecoverBoundaryElsewhere(t *testing.T) {
	analysistest.Run(t, recoverboundary.Analyzer, "testdata/other", "repro/internal/eval")
}
