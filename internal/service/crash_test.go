package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	reap "repro"
	"repro/wire"
)

// These tests pin the crash-safety contract end to end: every mutation
// the service acknowledged over HTTP must survive an unclean process
// death (simulated by abandoning the journal without sync, exactly what
// kill -9 leaves behind) and be reconstructed on the next boot — as
// judged against an independent journal-free service fed the same
// acknowledged events.

// crashService simulates kill -9: the maintenance loop stops and the
// journal is dropped without the final compaction or sync a clean Close
// performs. Anything already acknowledged has reached the kernel and
// must survive.
func crashService(svc *Service) {
	svc.closeOnce.Do(func() {
		if svc.stop != nil {
			close(svc.stop)
		}
	})
	svc.store.Abandon()
}

// mutation is one acknowledged state change, replayable into a
// reference service.
type mutation struct {
	op        string
	device    int
	consumedJ float64
	harvestJ  float64
	alpha     float64
}

// apply drives one mutation through a service's HTTP handler and
// reports whether it was acknowledged.
func (m mutation) apply(t *testing.T, h http.Handler) bool {
	t.Helper()
	switch m.op {
	case "report":
		rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
			V: wire.Version, Reports: []wire.DeviceReport{{Device: m.device, ConsumedJ: m.consumedJ}},
		})
		return rec.Code == http.StatusOK
	case "step":
		h2 := m.harvestJ
		raw := mustMarshal(t, &wire.TelemetryEvent{V: wire.Version, Device: m.device, HarvestJ: &h2})
		rec := do(t, h, http.MethodPost, "/v1/telemetry", append(raw, '\n'))
		if rec.Code != http.StatusOK {
			return false
		}
		var res wire.TelemetryResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("telemetry result: %v", err)
		}
		return res.Error == nil && res.Allocation != nil
	case "alpha":
		rec := do(t, h, http.MethodPost, "/v1/alpha", &wire.AlphaRequest{
			V: wire.Version, Device: m.device, Alpha: m.alpha,
		})
		return rec.Code == http.StatusOK
	default:
		t.Fatalf("unknown mutation op %q", m.op)
		return false
	}
}

// deviceStates snapshots every controller's state under all shard
// locks — the same consistent cut compaction takes — so it is safe to
// call while a replication tailer is applying frames concurrently.
func deviceStates(t *testing.T, svc *Service) []reap.ControllerState {
	t.Helper()
	for _, sh := range svc.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(svc.shards) - 1; i >= 0; i-- {
			svc.shards[i].mu.Unlock()
		}
	}()
	states := make([]reap.ControllerState, svc.cfg.Devices)
	for d := range states {
		ctl, err := svc.deviceFor(d)
		if err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		states[d] = ctl.State()
	}
	return states
}

// expectStatesEqual compares two fleets device by device. Controller
// state is plain comparable data, and replay is deterministic, so the
// comparison is exact — no tolerances.
func expectStatesEqual(t *testing.T, got, want []reap.ControllerState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("fleet sizes differ: %d vs %d", len(got), len(want))
	}
	for d := range got {
		if got[d] != want[d] {
			t.Errorf("device %d: restored %+v, want %+v", d, got[d], want[d])
		}
	}
}

func TestCrashRecoveryReconcilesState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Devices: 12, Shards: 4, BatteryJ: 30, CapacityJ: 100}
	jcfg := cfg
	jcfg.JournalDir = dir

	svc := newTestService(t, jcfg)
	h := svc.Handler()

	// A history touching every pillar: multi-device report batches that
	// span shards, telemetry steps, an alpha change, more steps on top.
	muts := []mutation{
		{op: "step", device: 0, harvestJ: 2},
		{op: "step", device: 5, harvestJ: 1.5},
		{op: "report", device: 0, consumedJ: 0.25},
		{op: "step", device: 11, harvestJ: 3},
		{op: "alpha", device: 5, alpha: 0.5},
		{op: "step", device: 5, harvestJ: 2.5},
		{op: "report", device: 11, consumedJ: 0.1},
		{op: "step", device: 0, harvestJ: 0.75},
	}
	for i, m := range muts {
		if !m.apply(t, h) {
			t.Fatalf("mutation %d (%+v) not acknowledged", i, m)
		}
	}
	// One request whose reports span several shards exercises the
	// per-shard run batching in the journal.
	rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version,
		Reports: []wire.DeviceReport{
			{Device: 1, ConsumedJ: 0.05}, {Device: 4, ConsumedJ: 0.06},
			{Device: 7, ConsumedJ: 0.07}, {Device: 10, ConsumedJ: 0.08},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("spanning report: %d %s", rec.Code, rec.Body)
	}

	pre := svc.Stats()
	preStates := deviceStates(t, svc)
	crashService(svc)

	restored := newTestService(t, jcfg)
	defer restored.Close()
	post := restored.Stats()

	if post.Journal == nil {
		t.Fatal("restored service reports no journal stats")
	}
	if post.Journal.Replayed == 0 {
		t.Error("restored service replayed nothing after an unclean crash")
	}
	if post.Steps != pre.Steps || post.Reports != pre.Reports || post.AlphaSets != pre.AlphaSets {
		t.Errorf("counters diverged across crash: steps %d/%d reports %d/%d alpha %d/%d",
			post.Steps, pre.Steps, post.Reports, pre.Reports, post.AlphaSets, pre.AlphaSets)
	}
	if post.TotalBatteryJ != pre.TotalBatteryJ {
		t.Errorf("total battery diverged across crash: %v != %v", post.TotalBatteryJ, pre.TotalBatteryJ)
	}
	expectStatesEqual(t, deviceStates(t, restored), preStates)

	// The reference check: a journal-free service fed the same
	// acknowledged events lands on the same state — replay is not just
	// self-consistent, it matches the semantics of the live paths.
	ref := newTestService(t, cfg)
	refH := ref.Handler()
	for i, m := range muts {
		if !m.apply(t, refH) {
			t.Fatalf("reference mutation %d not acknowledged", i)
		}
	}
	if rec := do(t, refH, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version,
		Reports: []wire.DeviceReport{
			{Device: 1, ConsumedJ: 0.05}, {Device: 4, ConsumedJ: 0.06},
			{Device: 7, ConsumedJ: 0.07}, {Device: 10, ConsumedJ: 0.08},
		},
	}); rec.Code != http.StatusOK {
		t.Fatalf("reference spanning report: %d", rec.Code)
	}
	expectStatesEqual(t, deviceStates(t, restored), deviceStates(t, ref))

	// And the restored daemon is live, not a museum: it keeps serving
	// and journaling.
	if !(mutation{op: "step", device: 3, harvestJ: 1}).apply(t, restored.Handler()) {
		t.Error("restored service refused new work")
	}
}

// TestCrashRecoveryUnderConcurrentTraffic is the -race version: several
// writers mutate disjoint device ranges through the handler while the
// journal serializes appends, then the process "dies" and the reboot
// must agree with a reference fed each writer's acknowledged sequence.
func TestCrashRecoveryUnderConcurrentTraffic(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Devices: 16, Shards: 4, BatteryJ: 40, CapacityJ: 120}
	jcfg := cfg
	jcfg.JournalDir = dir

	svc := newTestService(t, jcfg)
	h := svc.Handler()

	const writers = 4
	const perDevice = 4 // devices per writer
	const rounds = 30
	acked := make([][]mutation, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * perDevice
			for i := 0; i < rounds; i++ {
				device := base + i%perDevice
				var m mutation
				switch i % 3 {
				case 0:
					m = mutation{op: "step", device: device, harvestJ: 0.5 + float64(i%7)*0.4}
				case 1:
					m = mutation{op: "report", device: device, consumedJ: 0.01 + float64(i%5)*0.02}
				case 2:
					m = mutation{op: "alpha", device: device, alpha: 0.25 + float64(i%4)*0.5}
				}
				if m.apply(t, h) {
					acked[g] = append(acked[g], m)
				}
			}
		}(g)
	}
	wg.Wait()

	preStates := deviceStates(t, svc)
	crashService(svc)

	restored := newTestService(t, jcfg)
	defer restored.Close()
	expectStatesEqual(t, deviceStates(t, restored), preStates)

	// Writers own disjoint devices, so replaying each writer's
	// acknowledged sequence in its own order reconstructs every device
	// regardless of cross-writer interleaving.
	ref := newTestService(t, cfg)
	refH := ref.Handler()
	for g := range acked {
		for i, m := range acked[g] {
			if !m.apply(t, refH) {
				t.Fatalf("writer %d mutation %d not acknowledged by reference", g, i)
			}
		}
	}
	expectStatesEqual(t, deviceStates(t, restored), deviceStates(t, ref))
}

func TestCleanShutdownBootsWithZeroReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Devices: 6, Shards: 2, BatteryJ: 25, CapacityJ: 80, JournalDir: dir}

	svc := newTestService(t, cfg)
	h := svc.Handler()
	for d := 0; d < 6; d++ {
		if !(mutation{op: "step", device: d, harvestJ: 1.5}).apply(t, h) {
			t.Fatalf("step device %d", d)
		}
	}
	preStates := deviceStates(t, svc)
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	restored := newTestService(t, cfg)
	defer restored.Close()
	js := restored.Stats().Journal
	if js == nil || js.Replayed != 0 {
		t.Errorf("clean shutdown reboot replayed %+v, want zero replay from the final snapshot", js)
	}
	expectStatesEqual(t, deviceStates(t, restored), preStates)
}

// TestTornTailTruncatedOnBoot simulates the one write a power cut can
// tear — a half-appended record at the end of the active segment — and
// checks the boot drops exactly that and keeps everything acknowledged
// before it.
func TestTornTailTruncatedOnBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Devices: 4, Shards: 2, BatteryJ: 20, CapacityJ: 60, JournalDir: dir}

	svc := newTestService(t, cfg)
	h := svc.Handler()
	for _, m := range []mutation{
		{op: "step", device: 0, harvestJ: 2},
		{op: "report", device: 0, consumedJ: 0.2},
		{op: "step", device: 3, harvestJ: 1},
	} {
		if !m.apply(t, h) {
			t.Fatalf("mutation %+v not acknowledged", m)
		}
	}
	preStates := deviceStates(t, svc)
	crashService(svc)

	// Tear the tail: a partial frame that claims more payload than
	// exists, appended to the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored := newTestService(t, cfg)
	defer restored.Close()
	js := restored.Stats().Journal
	if js == nil || !js.TornTail {
		t.Errorf("journal stats %+v, want a reported torn tail", js)
	}
	expectStatesEqual(t, deviceStates(t, restored), preStates)
}

// TestJournalRefusesForeignFleet: a journal written under one fleet
// shape must not replay into another — device indices would silently
// mean different hardware.
func TestJournalRefusesForeignFleet(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Devices: 4, BatteryJ: 20, CapacityJ: 60, JournalDir: dir}
	svc := newTestService(t, cfg)
	if !(mutation{op: "step", device: 0, harvestJ: 1}).apply(t, svc.Handler()) {
		t.Fatal("step not acknowledged")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	for _, other := range []Config{
		{Devices: 5, BatteryJ: 20, CapacityJ: 60, JournalDir: dir},
		{Devices: 4, BatteryJ: 21, CapacityJ: 60, JournalDir: dir},
		{Devices: 4, BatteryJ: 20, CapacityJ: 60, JournalDir: dir, Solver: "simplex"},
	} {
		if _, err := New(other); err == nil {
			t.Errorf("config %+v adopted a foreign journal, want fingerprint refusal", other)
		}
	}
	// The original shape still boots.
	restored, err := New(cfg)
	if err != nil {
		t.Fatalf("original config refused its own journal: %v", err)
	}
	restored.Close()
}

func TestNewRejectsBadFsyncPolicy(t *testing.T) {
	if _, err := New(Config{Devices: 2, JournalDir: t.TempDir(), FsyncPolicy: "sometimes"}); err == nil {
		t.Error("unknown fsync policy accepted")
	}
}

// TestFsyncPolicies drives the same traffic under each policy; all are
// crash-consistent for process death, so recovery must look identical.
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			cfg := Config{Devices: 3, BatteryJ: 15, CapacityJ: 50,
				JournalDir: t.TempDir(), FsyncPolicy: policy}
			svc := newTestService(t, cfg)
			h := svc.Handler()
			for i := 0; i < 5; i++ {
				if !(mutation{op: "step", device: i % 3, harvestJ: 1 + float64(i)}).apply(t, h) {
					t.Fatalf("step %d", i)
				}
			}
			preStates := deviceStates(t, svc)
			crashService(svc)

			restored := newTestService(t, cfg)
			defer restored.Close()
			if got := restored.Stats().Journal.FsyncPolicy; got != policy {
				t.Errorf("journal stats report policy %q, want %q", got, policy)
			}
			expectStatesEqual(t, deviceStates(t, restored), preStates)
		})
	}
}

// BenchmarkReportPath measures the journaling tax on the hottest
// stateful endpoint: a 16-report batch (sorted by device, as a gateway
// would send it) against journal-off, the default interval policy, and
// the paranoid always policy. BENCH_serve.json records the off/interval
// ratio; the acceptance bar is ≤15% overhead at the default policy.
func BenchmarkReportPath(b *testing.B) {
	const devices = 64
	const batch = 16
	reports := make([]wire.DeviceReport, batch)
	for i := range reports {
		reports[i] = wire.DeviceReport{Device: i * (devices / batch), ConsumedJ: 0.001}
	}
	body := mustMarshalB(b, &wire.ReportRequest{V: wire.Version, Reports: reports})

	run := func(b *testing.B, cfg Config) {
		cfg.Devices = devices
		cfg.BatteryJ, cfg.CapacityJ = 1e6, 2e6 // never drained by the bench
		svc, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		h := svc.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, rec := benchRequest(body)
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	}
	b.Run("journal=off", func(b *testing.B) { run(b, Config{}) })
	b.Run("journal=interval", func(b *testing.B) {
		run(b, Config{JournalDir: b.TempDir(), FsyncPolicy: FsyncInterval})
	})
	b.Run("journal=always", func(b *testing.B) {
		run(b, Config{JournalDir: b.TempDir(), FsyncPolicy: FsyncAlways})
	})
}

func mustMarshalB(b *testing.B, v any) []byte {
	b.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// benchRequest builds a fresh report request/recorder pair per
// iteration (bodies are single-use readers).
func benchRequest(body []byte) (*http.Request, *httptest.ResponseRecorder) {
	req := httptest.NewRequest(http.MethodPost, "/v1/report", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req, httptest.NewRecorder()
}
