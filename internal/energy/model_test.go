package energy

import (
	"math"
	"testing"
)

// paperRow is one row of Table 2 in the paper.
type paperRow struct {
	name           string
	profile        Profile
	accelFeatMs    float64
	stretchFeatMs  float64
	nnMs           float64
	totalMs        float64
	mcuEnergyMJ    float64
	sensorEnergyMJ float64
	totalEnergyMJ  float64
	powerMW        float64
}

// table2 transcribes the paper's Table 2. The MAC counts come from the
// feature dimensionalities of the corresponding har design points
// (stats = 7 features/axis, 16-FFT = 9 features, hidden layer of 12,
// 7 output classes).
func table2() []paperRow {
	macs := func(inputs int) int { return inputs*12 + 12*7 }
	return []paperRow{
		{
			name: "DP1",
			profile: Profile{AccelAxes: 3, SensingFraction: 1, StretchFFT: true,
				NNMACs: macs(3*7 + 9), TxBytes: LabelBytes},
			accelFeatMs: 0.83, stretchFeatMs: 3.83, nnMs: 1.05, totalMs: 5.71,
			mcuEnergyMJ: 2.38, sensorEnergyMJ: 2.10, totalEnergyMJ: 4.48, powerMW: 2.76,
		},
		{
			name: "DP2",
			profile: Profile{AccelAxes: 1, SensingFraction: 1, StretchFFT: true,
				NNMACs: macs(7 + 9), TxBytes: LabelBytes},
			accelFeatMs: 0.27, stretchFeatMs: 3.83, nnMs: 1.00, totalMs: 5.10,
			mcuEnergyMJ: 2.29, sensorEnergyMJ: 1.43, totalEnergyMJ: 3.72, powerMW: 2.30,
		},
		{
			name: "DP3",
			profile: Profile{AccelAxes: 2, SensingFraction: 0.5, StretchFFT: true,
				NNMACs: macs(2*7 + 9), TxBytes: LabelBytes},
			accelFeatMs: 0.27, stretchFeatMs: 3.83, nnMs: 0.90, totalMs: 5.00,
			mcuEnergyMJ: 2.10, sensorEnergyMJ: 0.84, totalEnergyMJ: 2.94, powerMW: 1.82,
		},
		{
			name: "DP4",
			profile: Profile{AccelAxes: 1, SensingFraction: 0.375, StretchFFT: true,
				NNMACs: macs(7 + 9), TxBytes: LabelBytes},
			accelFeatMs: 0.14, stretchFeatMs: 3.83, nnMs: 1.00, totalMs: 4.97,
			mcuEnergyMJ: 2.09, sensorEnergyMJ: 0.57, totalEnergyMJ: 2.66, powerMW: 1.64,
		},
		{
			name: "DP5",
			profile: Profile{AccelAxes: 0, StretchFFT: true,
				NNMACs: macs(9), TxBytes: LabelBytes},
			accelFeatMs: 0.00, stretchFeatMs: 3.83, nnMs: 0.88, totalMs: 4.71,
			mcuEnergyMJ: 1.85, sensorEnergyMJ: 0.08, totalEnergyMJ: 1.93, powerMW: 1.20,
		},
	}
}

func within(t *testing.T, name, quantity string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > 1e-9 {
			t.Errorf("%s %s = %v, want 0", name, quantity, got)
		}
		return
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > relTol {
		t.Errorf("%s %s = %v, want %v (%.1f%% off, tolerance %.0f%%)",
			name, quantity, got, want, 100*rel, 100*relTol)
	}
}

func TestTable2Calibration(t *testing.T) {
	// The component model must land every Table 2 column within 15%.
	for _, row := range table2() {
		b, err := Activity(row.profile)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		within(t, row.name, "accel feature time", b.TimeAccelFeatures*1e3, row.accelFeatMs, 0.30)
		within(t, row.name, "stretch feature time", b.TimeStretchFeatures*1e3, row.stretchFeatMs, 0.15)
		within(t, row.name, "NN time", b.TimeNN*1e3, row.nnMs, 0.15)
		within(t, row.name, "total exec time", b.TimeTotal*1e3, row.totalMs, 0.15)
		within(t, row.name, "MCU energy", b.MCUEnergy()*1e3, row.mcuEnergyMJ, 0.15)
		within(t, row.name, "sensor energy", b.SensorEnergy()*1e3, row.sensorEnergyMJ, 0.15)
		within(t, row.name, "total energy", b.Total()*1e3, row.totalEnergyMJ, 0.15)
		within(t, row.name, "power", b.Power()*1e3, row.powerMW, 0.15)
	}
}

func TestTable2Ordering(t *testing.T) {
	// Beyond absolute calibration, the ordering DP1 > DP2 > DP3 > DP4 >
	// DP5 must hold exactly for energy and power.
	rows := table2()
	var prev float64 = math.Inf(1)
	for _, row := range rows {
		b, err := Activity(row.profile)
		if err != nil {
			t.Fatal(err)
		}
		if tot := b.Total(); tot >= prev {
			t.Errorf("%s total energy %v not strictly below previous %v", row.name, tot, prev)
		} else {
			prev = tot
		}
	}
}

func TestDP1HourlyBudget(t *testing.T) {
	// Figure 4: running DP1 for the full hour consumes ~9.9 J.
	b, err := Activity(table2()[0].profile)
	if err != nil {
		t.Fatal(err)
	}
	hourly := PerHour(b)
	if hourly < 9.0 || hourly < 9.9*0.85 || hourly > 9.9*1.15 {
		t.Fatalf("DP1 hourly energy %v J, want ~9.9 J", hourly)
	}
}

func TestFigure4SensorShare(t *testing.T) {
	// Figure 4: "about 47% of the energy consumption is due to the
	// sensors" for DP1.
	b, err := Activity(table2()[0].profile)
	if err != nil {
		t.Fatal(err)
	}
	share := b.SensorEnergy() / b.Total()
	if share < 0.40 || share < 0.47*0.85 || share > 0.47*1.15 {
		t.Fatalf("DP1 sensor share %.1f%%, want ~47%%", 100*share)
	}
}

func TestOffloadingUneconomical(t *testing.T) {
	// Section 4.2: raw streaming costs ~5.5 mJ/activity versus 0.38 mJ
	// for transmitting the label; offloading must cost more than every
	// on-device design point.
	raw := BLETransmission(RawWindowBytes)
	within(t, "offload", "raw BLE energy", raw*1e3, 5.5, 0.15)
	label := BLETransmission(LabelBytes)
	within(t, "offload", "label BLE energy", label*1e3, 0.38, 0.15)

	off, err := Activity(OffloadProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table2() {
		b, err := Activity(row.profile)
		if err != nil {
			t.Fatal(err)
		}
		if off.Total() <= b.Total() {
			t.Errorf("offloading (%v mJ) not more expensive than %s (%v mJ)",
				off.Total()*1e3, row.name, b.Total()*1e3)
		}
	}
	if BLETransmission(0) != 0 || BLETransmission(-5) != 0 {
		t.Error("empty payload should cost nothing")
	}
}

func TestPOffMatchesPaperFloor(t *testing.T) {
	if got := POff * 3600; math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("hourly off energy %v, want 0.18 J", got)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{AccelAxes: -1},
		{AccelAxes: 4},
		{AccelAxes: 1, SensingFraction: 0},
		{AccelAxes: 1, SensingFraction: 1.5},
		{AccelAxes: 1, SensingFraction: math.NaN()},
		{StretchFFT: true, StretchStats: true},
		{NNMACs: -1},
		{TxBytes: -1},
	}
	for i, p := range bad {
		if _, err := Activity(p); err == nil {
			t.Errorf("case %d: invalid profile %+v accepted", i, p)
		}
	}
	// Zero axes with zero sensing fraction is fine (fraction ignored).
	if _, err := Activity(Profile{AccelAxes: 0, StretchFFT: true, NNMACs: 100, TxBytes: 2}); err != nil {
		t.Errorf("stretch-only profile rejected: %v", err)
	}
}

func TestMonotonicKnobs(t *testing.T) {
	base := Profile{AccelAxes: 3, SensingFraction: 1, StretchFFT: true, NNMACs: 400, TxBytes: 2}
	energyOf := func(p Profile) float64 {
		b, err := Activity(p)
		if err != nil {
			t.Fatal(err)
		}
		return b.Total()
	}
	e0 := energyOf(base)

	fewerAxes := base
	fewerAxes.AccelAxes = 1
	if energyOf(fewerAxes) >= e0 {
		t.Error("dropping axes did not reduce energy")
	}
	shorterSensing := base
	shorterSensing.SensingFraction = 0.5
	if energyOf(shorterSensing) >= e0 {
		t.Error("shorter sensing did not reduce energy")
	}
	smallerNN := base
	smallerNN.NNMACs = 100
	if energyOf(smallerNN) >= e0 {
		t.Error("smaller classifier did not reduce energy")
	}
	dwt := base
	dwt.AccelDWT = true
	if energyOf(dwt) <= e0 {
		t.Error("DWT features should cost more than statistical features")
	}
	stretchStats := base
	stretchStats.StretchFFT = false
	stretchStats.StretchStats = true
	if energyOf(stretchStats) >= e0 {
		t.Error("statistical stretch features should cost less than the FFT")
	}
}
