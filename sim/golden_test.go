package sim

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden traces instead of comparing against
// them:
//
//	go test ./sim -run TestGoldenTraces -update
//
// Commit the regenerated files with the change that moved them, and say
// why the trace moved in the commit message — a golden diff is a
// behavior diff.
var update = flag.Bool("update", false, "rewrite golden trace files")

// TestGoldenTraces locks every library scenario's trace down
// byte-for-byte. Any change to the solvers, the cache, the controller
// accounting, the harvest/consumption models or the trace encoding
// shows up here as a diff against testdata/<scenario>.golden.
//
// The goldens are generated on amd64 (Go's portable math, no fused
// multiply-add); the fixed-point trace encoding leaves ~5·10⁻⁷ of
// headroom before a last-bit arithmetic difference could flip a digit.
func TestGoldenTraces(t *testing.T) {
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Trace.Bytes()
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace diverged from %s:\n%s", path, firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first differing line of two trace encodings.
func firstDiff(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d lines", len(g), len(w))
}

// TestGoldenCoversLibrary fails when a scenario is added to the library
// without a checked-in golden, or a stale golden lingers after a rename.
func TestGoldenCoversLibrary(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, sc := range Library() {
		want[sc.Name+".golden"] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stale golden %s has no library scenario", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("scenario %s has no checked-in golden", name)
	}
}
